//! The design space: cartesian product of knob domains.

use crate::intern::{intern, lookup, SymbolId};
use crate::knob::{Knob, KnobValue};
use rand::Rng;
use std::fmt;

/// One configuration: an assignment of a value to every knob.
///
/// Internally a small vector of `(SymbolId, KnobValue)` pairs kept
/// sorted by knob *name* — iteration order, `Display` output, and
/// equality are identical to the `BTreeMap<String, _>` representation
/// this replaced, but lookups compare dense `u32` ids instead of
/// strings and cloning copies no key strings.
#[derive(Debug, PartialEq, Default)]
pub struct Configuration {
    values: Vec<(SymbolId, KnobValue)>,
}

impl Clone for Configuration {
    fn clone(&self) -> Self {
        Configuration {
            values: self.values.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        // reuses the vector's allocation in hot loops (neighbour
        // generation, population search)
        self.values.clone_from(&source.values);
    }
}

impl Configuration {
    /// Creates an empty configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty configuration with room for `knobs` assignments.
    pub fn with_capacity(knobs: usize) -> Self {
        Configuration {
            values: Vec::with_capacity(knobs),
        }
    }

    /// Sets a knob value.
    pub fn set(&mut self, knob: impl AsRef<str>, value: KnobValue) {
        self.set_id(intern(knob.as_ref()), value);
    }

    /// Sets a knob value by pre-interned id (the allocation-free path
    /// the [`DesignSpace`] enumeration and search inner loops use).
    pub fn set_id(&mut self, id: SymbolId, value: KnobValue) {
        for entry in &mut self.values {
            if entry.0 == id {
                entry.1 = value;
                return;
            }
        }
        let name = id.name();
        let at = self
            .values
            .iter()
            .position(|(other, _)| other.name() > name)
            .unwrap_or(self.values.len());
        self.values.insert(at, (id, value));
    }

    /// Gets a knob value.
    pub fn get(&self, knob: &str) -> Option<&KnobValue> {
        self.get_id(lookup(knob)?)
    }

    /// Gets a knob value by pre-interned id.
    pub fn get_id(&self, id: SymbolId) -> Option<&KnobValue> {
        self.values
            .iter()
            .find(|(other, _)| *other == id)
            .map(|(_, v)| v)
    }

    /// Integer value of a knob.
    pub fn get_int(&self, knob: &str) -> Option<i64> {
        self.get(knob)?.as_int()
    }

    /// Float value of a knob (ints promote).
    pub fn get_float(&self, knob: &str) -> Option<f64> {
        self.get(knob)?.as_float()
    }

    /// Choice value of a knob.
    pub fn get_choice(&self, knob: &str) -> Option<&str> {
        self.get(knob)?.as_choice()
    }

    /// Iterates over `(knob, value)` pairs in knob-name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &KnobValue)> {
        self.values.iter().map(|(k, v)| (k.name(), v))
    }

    /// The raw `(id, value)` entries in knob-name order — the dense view
    /// structural hashing and cache keys are built from.
    pub fn entries(&self) -> &[(SymbolId, KnobValue)] {
        &self.values
    }

    /// Number of assigned knobs.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if no knobs are assigned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl fmt::Display for Configuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(String, KnobValue)> for Configuration {
    fn from_iter<I: IntoIterator<Item = (String, KnobValue)>>(iter: I) -> Self {
        let mut config = Configuration::new();
        for (name, value) in iter {
            config.set(name, value);
        }
        config
    }
}

/// The cartesian design space over a set of knobs.
///
/// # Examples
///
/// ```
/// use antarex_tuner::{knob::Knob, space::DesignSpace};
///
/// let space = DesignSpace::new(vec![
///     Knob::int("unroll", 1, 4, 1),
///     Knob::choice("variant", ["a", "b"]),
/// ]);
/// assert_eq!(space.size(), 8);
/// assert_eq!(space.iter().count(), 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpace {
    knobs: Vec<Knob>,
    ids: Vec<SymbolId>,
}

impl DesignSpace {
    /// Creates a space over `knobs`.
    ///
    /// # Panics
    ///
    /// Panics if two knobs share a name.
    pub fn new(knobs: Vec<Knob>) -> Self {
        for (i, a) in knobs.iter().enumerate() {
            for b in &knobs[i + 1..] {
                assert!(a.name() != b.name(), "duplicate knob `{}`", a.name());
            }
        }
        let ids = knobs.iter().map(|k| intern(k.name())).collect();
        DesignSpace { knobs, ids }
    }

    /// The knobs, in declaration order.
    pub fn knobs(&self) -> &[Knob] {
        &self.knobs
    }

    /// The knobs' interned ids, parallel to [`knobs`](Self::knobs).
    pub fn knob_ids(&self) -> &[SymbolId] {
        &self.ids
    }

    /// Looks up a knob by name.
    pub fn knob(&self, name: &str) -> Option<&Knob> {
        self.knobs.iter().find(|k| k.name() == name)
    }

    /// Total number of configurations.
    pub fn size(&self) -> u128 {
        self.knobs.iter().map(|k| k.cardinality() as u128).product()
    }

    /// Iterates over every configuration (row-major over knob order).
    pub fn iter(&self) -> SpaceIter<'_> {
        SpaceIter {
            space: self,
            indexes: vec![0; self.knobs.len()],
            done: self.knobs.iter().any(|k| k.cardinality() == 0),
        }
    }

    /// Uniformly samples one configuration.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Configuration {
        let mut config = Configuration::with_capacity(self.knobs.len());
        for (knob, &id) in self.knobs.iter().zip(&self.ids) {
            let index = rng.gen_range(0..knob.cardinality());
            config.set_id(id, knob.value_at(index));
        }
        config
    }

    /// All single-knob neighbours of a configuration (one knob moved one
    /// step up or down its domain; choices move to adjacent entries).
    pub fn neighbors(&self, config: &Configuration) -> Vec<Configuration> {
        let mut out = Vec::new();
        self.neighbors_into(config, &mut out);
        out
    }

    /// Writes the neighbours of `config` into `out`, reusing its
    /// existing `Configuration` allocations — the buffer local search
    /// loops keep across iterations instead of reallocating every
    /// refill. Order is identical to [`neighbors`](Self::neighbors).
    pub fn neighbors_into(&self, config: &Configuration, out: &mut Vec<Configuration>) {
        let mut used = 0;
        for (knob, &id) in self.knobs.iter().zip(&self.ids) {
            let Some(value) = config.get_id(id) else {
                continue;
            };
            let Some(index) = knob.index_of(value) else {
                continue;
            };
            for delta in [-1i64, 1] {
                let j = index as i64 + delta;
                if j >= 0 && (j as usize) < knob.cardinality() {
                    if used < out.len() {
                        out[used].clone_from(config);
                    } else {
                        out.push(config.clone());
                    }
                    out[used].set_id(id, knob.value_at(j as usize));
                    used += 1;
                }
            }
        }
        out.truncate(used);
    }

    /// Returns `true` if the configuration assigns an admissible value to
    /// every knob (and nothing else).
    pub fn contains(&self, config: &Configuration) -> bool {
        config.len() == self.knobs.len()
            && self
                .knobs
                .iter()
                .zip(&self.ids)
                .all(|(k, &id)| config.get_id(id).is_some_and(|v| k.index_of(v).is_some()))
    }

    /// Grey-box annotation: returns a space with one knob's domain shrunk
    /// by the predicate. Knobs not named are unchanged.
    ///
    /// # Panics
    ///
    /// Panics if the knob does not exist or nothing survives the filter.
    pub fn restrict(&self, knob: &str, keep: impl Fn(&KnobValue) -> bool) -> DesignSpace {
        let knobs = self
            .knobs
            .iter()
            .map(|k| {
                if k.name() == knob {
                    k.restrict(&keep)
                        .unwrap_or_else(|| panic!("restriction on `{knob}` left no values"))
                } else {
                    k.clone()
                }
            })
            .collect();
        let found = self.knobs.iter().any(|k| k.name() == knob);
        assert!(found, "no knob named `{knob}`");
        DesignSpace {
            knobs,
            ids: self.ids.clone(),
        }
    }

    /// The `index`-th configuration in row-major order (mixed-radix
    /// decode). Lets exhaustive search enumerate without borrowing.
    ///
    /// # Panics
    ///
    /// Panics if `index >= size()`.
    pub fn config_at(&self, mut index: u128) -> Configuration {
        assert!(index < self.size(), "configuration index out of range");
        let mut config = Configuration::with_capacity(self.knobs.len());
        for (knob, &id) in self.knobs.iter().zip(&self.ids).rev() {
            let card = knob.cardinality() as u128;
            let digit = (index % card) as usize;
            index /= card;
            config.set_id(id, knob.value_at(digit));
        }
        config
    }

    /// The configuration at the centre of every domain (a reasonable
    /// starting point for local search).
    pub fn center(&self) -> Configuration {
        let mut config = Configuration::with_capacity(self.knobs.len());
        for (knob, &id) in self.knobs.iter().zip(&self.ids) {
            config.set_id(id, knob.value_at(knob.cardinality() / 2));
        }
        config
    }
}

/// Iterator over all configurations of a [`DesignSpace`].
#[derive(Debug)]
pub struct SpaceIter<'a> {
    space: &'a DesignSpace,
    indexes: Vec<usize>,
    done: bool,
}

impl Iterator for SpaceIter<'_> {
    type Item = Configuration;

    fn next(&mut self) -> Option<Configuration> {
        if self.done {
            return None;
        }
        let mut config = Configuration::with_capacity(self.space.knobs.len());
        for ((knob, &id), &i) in self
            .space
            .knobs
            .iter()
            .zip(&self.space.ids)
            .zip(&self.indexes)
        {
            config.set_id(id, knob.value_at(i));
        }
        // odometer increment
        let mut carry = true;
        for (i, knob) in self.space.knobs.iter().enumerate().rev() {
            if carry {
                self.indexes[i] += 1;
                if self.indexes[i] >= knob.cardinality() {
                    self.indexes[i] = 0;
                } else {
                    carry = false;
                }
            }
        }
        if carry {
            self.done = true;
        }
        // empty knob list: single empty configuration
        if self.space.knobs.is_empty() {
            self.done = true;
        }
        Some(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> DesignSpace {
        DesignSpace::new(vec![
            Knob::int("unroll", 1, 4, 1),
            Knob::choice("variant", ["a", "b"]),
        ])
    }

    #[test]
    fn size_and_iteration() {
        let s = space();
        assert_eq!(s.size(), 8);
        let all: Vec<Configuration> = s.iter().collect();
        assert_eq!(all.len(), 8);
        // all distinct
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert!(all.iter().all(|c| s.contains(c)));
    }

    #[test]
    fn empty_space_yields_one_empty_config() {
        let s = DesignSpace::new(vec![]);
        assert_eq!(s.size(), 1);
        let all: Vec<_> = s.iter().collect();
        assert_eq!(all.len(), 1);
        assert!(all[0].is_empty());
    }

    #[test]
    fn sampling_is_admissible() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            assert!(s.contains(&s.sample(&mut rng)));
        }
    }

    #[test]
    fn neighbors_move_one_step() {
        let s = space();
        let mut config = Configuration::new();
        config.set("unroll", KnobValue::Int(2));
        config.set("variant", KnobValue::Choice("a".into()));
        let neighbors = s.neighbors(&config);
        // unroll: 1 or 3; variant: b
        assert_eq!(neighbors.len(), 3);
        assert!(neighbors.iter().all(|n| s.contains(n)));
        // boundary: unroll=1 has only one integer neighbour
        config.set("unroll", KnobValue::Int(1));
        assert_eq!(s.neighbors(&config).len(), 2);
    }

    #[test]
    fn neighbors_into_reuses_and_matches_neighbors() {
        let s = space();
        let mut config = Configuration::new();
        config.set("unroll", KnobValue::Int(2));
        config.set("variant", KnobValue::Choice("a".into()));
        // oversized, stale buffer: must be overwritten and truncated
        let mut buffer = vec![s.center(); 7];
        s.neighbors_into(&config, &mut buffer);
        assert_eq!(buffer, s.neighbors(&config));
        // undersized buffer: must grow
        config.set("unroll", KnobValue::Int(3));
        buffer.truncate(1);
        s.neighbors_into(&config, &mut buffer);
        assert_eq!(buffer, s.neighbors(&config));
    }

    #[test]
    fn contains_rejects_bad_configs() {
        let s = space();
        let mut config = Configuration::new();
        config.set("unroll", KnobValue::Int(99));
        config.set("variant", KnobValue::Choice("a".into()));
        assert!(!s.contains(&config));
        let partial: Configuration = [("unroll".to_string(), KnobValue::Int(2))]
            .into_iter()
            .collect();
        assert!(!s.contains(&partial));
    }

    #[test]
    fn restrict_shrinks_one_knob() {
        let s = DesignSpace::new(vec![Knob::int("unroll", 1, 16, 1)]);
        let shrunk = s.restrict("unroll", |v| {
            v.as_int().is_some_and(|i| i > 0 && (i & (i - 1)) == 0)
        });
        assert_eq!(shrunk.size(), 5);
    }

    #[test]
    #[should_panic(expected = "duplicate knob")]
    fn duplicate_names_panic() {
        let _ = DesignSpace::new(vec![Knob::int("x", 0, 1, 1), Knob::int("x", 0, 1, 1)]);
    }

    #[test]
    fn center_is_admissible() {
        let s = space();
        assert!(s.contains(&s.center()));
    }

    #[test]
    fn configuration_display() {
        let mut c = Configuration::new();
        c.set("b", KnobValue::Int(1));
        c.set("a", KnobValue::Choice("x".into()));
        assert_eq!(c.to_string(), "{a=x, b=1}");
    }

    #[test]
    fn entries_are_name_sorted_and_overwritable() {
        let mut c = Configuration::new();
        c.set("zeta", KnobValue::Int(1));
        c.set("alpha", KnobValue::Int(2));
        c.set("mid", KnobValue::Int(3));
        let names: Vec<&str> = c.entries().iter().map(|(id, _)| id.name()).collect();
        assert_eq!(names, ["alpha", "mid", "zeta"]);
        c.set("mid", KnobValue::Int(9));
        assert_eq!(c.len(), 3);
        assert_eq!(c.get_int("mid"), Some(9));
    }

    #[test]
    fn get_by_id_matches_get_by_name() {
        let s = space();
        let c = s.center();
        for (&id, knob) in s.knob_ids().iter().zip(s.knobs()) {
            assert_eq!(c.get_id(id), c.get(knob.name()));
        }
    }

    #[test]
    fn debug_rendering_names_knobs() {
        let s = space();
        assert!(format!("{s:?}").contains("unroll"));
    }
}
