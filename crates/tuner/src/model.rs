//! Predictive models over the design space.
//!
//! "Machine learning techniques are also adopted by the decision-making
//! engine to support autotuning by predicting the most promising set of
//! parameter settings" (§IV). Two simple, dependency-free models:
//!
//! * [`LinearModel`] — least-squares linear regression on numeric knob
//!   features (categorical knobs are one-hot encoded), solved by normal
//!   equations with Gaussian elimination;
//! * [`KnnModel`] — k-nearest-neighbours over knob index space, useful on
//!   non-linear surfaces.

use crate::space::{Configuration, DesignSpace};

/// Encodes a configuration as a numeric feature vector: numeric knobs map
/// to their value, categorical knobs one-hot expand. A leading 1 provides
/// the intercept.
pub fn features(space: &DesignSpace, config: &Configuration) -> Vec<f64> {
    let mut x = vec![1.0];
    for knob in space.knobs() {
        match knob.domain() {
            crate::knob::KnobDomain::Choices(choices) => {
                let selected = config.get_choice(knob.name());
                for choice in choices {
                    x.push(if selected == Some(choice.as_str()) {
                        1.0
                    } else {
                        0.0
                    });
                }
            }
            _ => x.push(config.get_float(knob.name()).unwrap_or(0.0)),
        }
    }
    x
}

/// Least-squares linear regression over knob features.
#[derive(Debug, Clone)]
pub struct LinearModel {
    weights: Vec<f64>,
}

impl LinearModel {
    /// Fits the model on `(configuration, cost)` observations.
    ///
    /// Returns `None` when the normal equations are singular (e.g. fewer
    /// observations than features).
    pub fn fit(space: &DesignSpace, observations: &[(Configuration, f64)]) -> Option<LinearModel> {
        if observations.is_empty() {
            return None;
        }
        let xs: Vec<Vec<f64>> = observations
            .iter()
            .map(|(c, _)| features(space, c))
            .collect();
        let n = xs[0].len();
        // normal equations: (XᵀX) w = Xᵀy, with a tiny ridge for stability
        let mut a = vec![vec![0.0f64; n]; n];
        let mut b = vec![0.0f64; n];
        for (x, (_, y)) in xs.iter().zip(observations) {
            for i in 0..n {
                for j in 0..n {
                    a[i][j] += x[i] * x[j];
                }
                b[i] += x[i] * y;
            }
        }
        for (i, row) in a.iter_mut().enumerate() {
            row[i] += 1e-9;
        }
        let weights = solve(a, b)?;
        Some(LinearModel { weights })
    }

    /// Predicts the cost of a configuration.
    pub fn predict(&self, space: &DesignSpace, config: &Configuration) -> f64 {
        features(space, config)
            .iter()
            .zip(&self.weights)
            .map(|(x, w)| x * w)
            .sum()
    }

    /// The fitted weights (intercept first).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Ranks candidate configurations by predicted cost, ascending.
    pub fn rank<'a>(
        &self,
        space: &DesignSpace,
        candidates: &'a [Configuration],
    ) -> Vec<(&'a Configuration, f64)> {
        let mut scored: Vec<(&Configuration, f64)> = candidates
            .iter()
            .map(|c| (c, self.predict(space, c)))
            .collect();
        scored.sort_by(|a, b| a.1.total_cmp(&b.1));
        scored
    }
}

/// Gaussian elimination with partial pivoting.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        let pivot = (col..n).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in (col + 1)..n {
            let factor = a[row][col] / a[col][col];
            // reads row `col` while mutating row `row`, so the pivot row
            // is split off rather than indexed twice
            let (pivot_rows, rest) = a.split_at_mut(col + 1);
            let pivot_row = &pivot_rows[col];
            for (k, v) in rest[row - col - 1].iter_mut().enumerate().skip(col) {
                *v -= factor * pivot_row[k];
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut sum = b[row];
        for col in (row + 1)..n {
            sum -= a[row][col] * x[col];
        }
        x[row] = sum / a[row][row];
    }
    Some(x)
}

/// k-nearest-neighbours regression over knob *index* space (each knob's
/// position within its domain), which handles categorical knobs uniformly.
#[derive(Debug, Clone)]
pub struct KnnModel {
    k: usize,
    points: Vec<(Vec<f64>, f64)>,
}

impl KnnModel {
    /// Fits (memorizes) the observations with neighbourhood size `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn fit(space: &DesignSpace, observations: &[(Configuration, f64)], k: usize) -> KnnModel {
        assert!(k > 0, "k must be positive");
        let points = observations
            .iter()
            .map(|(c, y)| (index_coords(space, c), *y))
            .collect();
        KnnModel { k, points }
    }

    /// Predicts by inverse-distance-weighted average of the k nearest
    /// observations (exact matches dominate).
    pub fn predict(&self, space: &DesignSpace, config: &Configuration) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        let q = index_coords(space, config);
        let mut dists: Vec<(f64, f64)> = self
            .points
            .iter()
            .map(|(p, y)| {
                let d2: f64 = p.iter().zip(&q).map(|(a, b)| (a - b).powi(2)).sum();
                (d2.sqrt(), *y)
            })
            .collect();
        dists.sort_by(|a, b| a.0.total_cmp(&b.0));
        let take = self.k.min(dists.len());
        let mut num = 0.0;
        let mut den = 0.0;
        for (d, y) in dists.into_iter().take(take) {
            let w = 1.0 / (d + 1e-9);
            num += w * y;
            den += w;
        }
        Some(num / den)
    }
}

fn index_coords(space: &DesignSpace, config: &Configuration) -> Vec<f64> {
    space
        .knobs()
        .iter()
        .map(|k| {
            config
                .get(k.name())
                .and_then(|v| k.index_of(v))
                .map_or(0.0, |i| i as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knob::{Knob, KnobValue};

    fn space() -> DesignSpace {
        DesignSpace::new(vec![
            Knob::int("x", 0, 10, 1),
            Knob::choice("variant", ["a", "b"]),
        ])
    }

    fn config(x: i64, variant: &str) -> Configuration {
        let mut c = Configuration::new();
        c.set("x", KnobValue::Int(x));
        c.set("variant", KnobValue::Choice(variant.into()));
        c
    }

    #[test]
    fn linear_model_recovers_linear_surface() {
        let space = space();
        // y = 3 + 2x + 5*[variant=b]
        let observations: Vec<(Configuration, f64)> = (0..=10)
            .flat_map(|x| {
                [
                    (config(x, "a"), 3.0 + 2.0 * x as f64),
                    (config(x, "b"), 8.0 + 2.0 * x as f64),
                ]
            })
            .collect();
        let model = LinearModel::fit(&space, &observations).unwrap();
        let predicted = model.predict(&space, &config(7, "b"));
        assert!((predicted - 22.0).abs() < 1e-6, "got {predicted}");
        let predicted = model.predict(&space, &config(2, "a"));
        assert!((predicted - 7.0).abs() < 1e-6);
    }

    #[test]
    fn linear_model_ranks_candidates() {
        let space = space();
        let observations: Vec<(Configuration, f64)> =
            (0..=10).map(|x| (config(x, "a"), x as f64)).collect();
        let model = LinearModel::fit(&space, &observations).unwrap();
        let candidates = vec![config(9, "a"), config(1, "a"), config(5, "a")];
        let ranked = model.rank(&space, &candidates);
        assert_eq!(ranked[0].0.get_int("x"), Some(1));
        assert_eq!(ranked[2].0.get_int("x"), Some(9));
    }

    #[test]
    fn fit_on_empty_is_none() {
        assert!(LinearModel::fit(&space(), &[]).is_none());
    }

    #[test]
    fn knn_interpolates_locally() {
        let space = space();
        let observations: Vec<(Configuration, f64)> = (0..=10)
            .map(|x| (config(x, "a"), (x as f64 - 5.0).powi(2)))
            .collect();
        let model = KnnModel::fit(&space, &observations, 3);
        // exact-match prediction dominates
        let at5 = model.predict(&space, &config(5, "a")).unwrap();
        assert!(at5 < 1.0, "got {at5}");
        let at0 = model.predict(&space, &config(0, "a")).unwrap();
        assert!(at0 > at5);
    }

    #[test]
    fn knn_on_empty_is_none() {
        let model = KnnModel::fit(&space(), &[], 3);
        assert_eq!(model.predict(&space(), &config(0, "a")), None);
    }

    #[test]
    fn solver_handles_singular() {
        // duplicate feature rows -> singular without the ridge escape
        let a = vec![vec![0.0, 0.0], vec![0.0, 0.0]];
        assert!(solve(a, vec![1.0, 1.0]).is_none());
    }
}
