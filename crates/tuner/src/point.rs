//! Operating points and the design-time knowledge base.
//!
//! An operating point pairs a configuration with the metrics measured for
//! it (time, energy, quality, ...). The knowledge base is what design-time
//! exploration hands to the runtime manager — mARGOt's list of operating
//! points, filtered by constraints and ranked by the objective at runtime.
//!
//! Selection is the runtime hot path, so the knowledge base keeps two
//! auxiliary indexes maintained incrementally by [`KnowledgeBase::push`],
//! [`upsert`](KnowledgeBase::upsert) and [`learn`](KnowledgeBase::learn):
//! a structural-hash map from configuration to point index (O(1)
//! [`find`](KnowledgeBase::find)), and one sorted column per metric so
//! [`best`](KnowledgeBase::best) is an ordered-index probe instead of a
//! full scan. The pre-index linear scan survives as
//! [`best_linear`](KnowledgeBase::best_linear) — the reference
//! implementation property tests compare against, and the fallback when
//! a NaN metric makes ordering undefined.

use crate::goal::{Constraint, Direction, Objective};
use crate::intern::{intern, lookup, SymbolId};
use crate::knob::KnobValue;
use crate::space::Configuration;
use std::collections::{BTreeSet, HashMap};

/// A configuration plus its measured metrics.
///
/// Metrics are stored as a dense `(SymbolId, f64)` column sorted by
/// metric *name*, so equality and iteration order match the string-keyed
/// map this replaced while lookups compare dense ids.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingPoint {
    /// The knob settings.
    pub config: Configuration,
    metrics: Vec<(SymbolId, f64)>,
}

impl OperatingPoint {
    /// Creates an operating point.
    pub fn new(config: Configuration, metrics: impl IntoIterator<Item = (String, f64)>) -> Self {
        let mut point = OperatingPoint {
            config,
            metrics: Vec::new(),
        };
        for (name, value) in metrics {
            point.set_metric(intern(&name), value);
        }
        point
    }

    /// Creates an operating point from pre-interned metric ids — the
    /// allocation-free path the runtime manager uses when folding
    /// monitor means back into the knowledge base.
    pub fn with_metric_ids(
        config: Configuration,
        metrics: impl IntoIterator<Item = (SymbolId, f64)>,
    ) -> Self {
        let mut point = OperatingPoint {
            config,
            metrics: Vec::new(),
        };
        for (id, value) in metrics {
            point.set_metric(id, value);
        }
        point
    }

    /// Sets (or overwrites) one metric, keeping the column name-sorted.
    pub fn set_metric(&mut self, id: SymbolId, value: f64) {
        for entry in &mut self.metrics {
            if entry.0 == id {
                entry.1 = value;
                return;
            }
        }
        let name = id.name();
        let at = self
            .metrics
            .iter()
            .position(|(other, _)| other.name() > name)
            .unwrap_or(self.metrics.len());
        self.metrics.insert(at, (id, value));
    }

    /// A metric value.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metric_id(lookup(name)?)
    }

    /// A metric value by pre-interned id.
    pub fn metric_id(&self, id: SymbolId) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(other, _)| *other == id)
            .map(|(_, v)| *v)
    }

    /// Iterates over `(metric, value)` pairs in metric-name order.
    pub fn metrics(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.metrics.iter().map(|(id, v)| (id.name(), *v))
    }

    /// Number of measured metrics.
    pub fn metric_count(&self) -> usize {
        self.metrics.len()
    }

    /// Returns `true` if every constraint is met (missing metrics fail).
    pub fn satisfies(&self, constraints: &[Constraint]) -> bool {
        constraints.iter().all(|c| {
            self.metric_id(c.metric_id())
                .is_some_and(|v| c.satisfied_by(v))
        })
    }
}

/// SplitMix64 finalizer — the avalanche stage used for structural
/// configuration hashing.
fn mix64(mut z: u64) -> u64 {
    z ^= z >> 30;
    z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Structural hash of a configuration: equal configurations (under
/// `PartialEq`, which treats `-0.0 == 0.0` for float knobs) hash equal.
/// Used only for in-process bucketing; collisions are verified by
/// configuration equality.
fn config_hash(config: &Configuration) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for (id, value) in config.entries() {
        h = mix64(h ^ u64::from(id.index()));
        h = match value {
            KnobValue::Int(v) => mix64(h ^ 0xA1 ^ (*v as u64)),
            KnobValue::Float(v) => {
                // -0.0 == 0.0 under PartialEq, so both must hash alike
                let canonical = if *v == 0.0 { 0.0f64 } else { *v };
                mix64(h ^ 0xB2 ^ canonical.to_bits())
            }
            KnobValue::Choice(s) => {
                let mut hc = h ^ 0xC3;
                for byte in s.as_bytes() {
                    hc = mix64(hc ^ u64::from(*byte));
                }
                hc
            }
        };
    }
    h
}

/// Maps a finite metric value to a `u64` that sorts like the float
/// (`None` for NaN). `-0.0` normalizes to `+0.0` so equal-comparing
/// values share one key.
fn sort_key(value: f64) -> Option<u64> {
    if value.is_nan() {
        return None;
    }
    let bits = if value == 0.0 {
        0.0f64.to_bits()
    } else {
        value.to_bits()
    };
    Some(if bits & (1 << 63) != 0 {
        !bits
    } else {
        bits | (1 << 63)
    })
}

/// One metric's sorted column: `(sort_key, point index)` pairs, plus a
/// count of NaN measurements (which have no place in a total order and
/// force selection back onto the linear reference).
#[derive(Debug, Clone, Default)]
struct MetricColumn {
    sorted: BTreeSet<(u64, u32)>,
    nans: u32,
}

/// The list of known operating points.
///
/// # Examples
///
/// ```
/// use antarex_tuner::{Configuration, KnowledgeBase, OperatingPoint};
/// use antarex_tuner::goal::{Constraint, Objective};
///
/// let mut kb = KnowledgeBase::new();
/// let mut slow = Configuration::new();
/// slow.set("unroll", antarex_tuner::KnobValue::Int(1));
/// kb.push(OperatingPoint::new(
///     slow,
///     [("time".to_string(), 2.0), ("energy".to_string(), 1.0)],
/// ));
/// let best = kb.best(&Objective::minimize("time"), &[]).unwrap();
/// assert_eq!(best.metric("time"), Some(2.0));
/// ```
#[derive(Clone, Default)]
pub struct KnowledgeBase {
    points: Vec<OperatingPoint>,
    by_config: HashMap<u64, Vec<u32>>,
    columns: HashMap<SymbolId, MetricColumn>,
}

impl std::fmt::Debug for KnowledgeBase {
    /// Shows only the points: the indexes are derived state whose
    /// `HashMap` iteration order is per-instance, and crash-recovery
    /// reports byte-compare this rendering.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KnowledgeBase")
            .field("points", &self.points)
            .finish()
    }
}

impl PartialEq for KnowledgeBase {
    fn eq(&self, other: &Self) -> bool {
        // the indexes are derived state; bases are equal iff the points are
        self.points == other.points
    }
}

impl KnowledgeBase {
    /// Creates an empty knowledge base.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a point, indexing its configuration and metric columns.
    pub fn push(&mut self, point: OperatingPoint) {
        let idx = u32::try_from(self.points.len()).expect("knowledge base overflow");
        self.by_config
            .entry(config_hash(&point.config))
            .or_default()
            .push(idx);
        for &(id, value) in &point.metrics {
            index_metric(&mut self.columns, id, value, idx);
        }
        self.points.push(point);
    }

    /// All points.
    pub fn points(&self) -> &[OperatingPoint] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the base is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Points satisfying every constraint.
    pub fn feasible<'a>(
        &'a self,
        constraints: &'a [Constraint],
    ) -> impl Iterator<Item = &'a OperatingPoint> {
        self.points.iter().filter(move |p| p.satisfies(constraints))
    }

    /// The best feasible point under the objective: mARGOt's runtime
    /// selection. Ties resolve to the earliest point.
    ///
    /// Probes the objective metric's sorted column — cost is the number
    /// of *infeasible* better-scoring entries skipped, not the size of
    /// the base. Falls back to [`best_linear`](Self::best_linear) when
    /// the column contains NaN measurements.
    pub fn best(
        &self,
        objective: &Objective,
        constraints: &[Constraint],
    ) -> Option<&OperatingPoint> {
        let column = self.columns.get(&objective.metric_id())?;
        if column.nans > 0 {
            // NaN scores have no total order; defer to the reference
            // implementation's exact comparison quirks
            return self.best_linear(objective, constraints);
        }
        match objective.direction() {
            Direction::Minimize => column
                .sorted
                .iter()
                .find(|&&(_, idx)| self.points[idx as usize].satisfies(constraints))
                .map(|&(_, idx)| &self.points[idx as usize]),
            Direction::Maximize => {
                // descending order yields the highest value first, but
                // within one value the largest index first — keep
                // scanning the equal-value run for the earliest point
                let mut winner: Option<(u64, u32)> = None;
                for &(key, idx) in column.sorted.iter().rev() {
                    match winner {
                        Some((best_key, _)) if key != best_key => break,
                        _ => {}
                    }
                    if self.points[idx as usize].satisfies(constraints) {
                        match winner {
                            Some((_, best_idx)) if best_idx <= idx => {}
                            _ => winner = Some((key, idx)),
                        }
                    }
                }
                winner.map(|(_, idx)| &self.points[idx as usize])
            }
        }
    }

    /// The retained linear-scan reference for [`best`](Self::best):
    /// scans every point in insertion order. Property tests assert the
    /// indexed path returns exactly this; it also serves as the
    /// baseline in the `p1` performance experiment.
    pub fn best_linear(
        &self,
        objective: &Objective,
        constraints: &[Constraint],
    ) -> Option<&OperatingPoint> {
        let mut best: Option<(&OperatingPoint, f64)> = None;
        for point in self.points.iter().filter(|p| p.satisfies(constraints)) {
            let Some(value) = point.metric_id(objective.metric_id()) else {
                continue;
            };
            let score = objective.score(value);
            match &best {
                Some((_, best_score)) if *best_score >= score => {}
                _ => best = Some((point, score)),
            }
        }
        best.map(|(p, _)| p)
    }

    /// Looks up the point for a configuration, if measured before —
    /// a hash probe verified by configuration equality.
    pub fn find(&self, config: &Configuration) -> Option<&OperatingPoint> {
        self.find_index(config).map(|i| &self.points[i])
    }

    /// Index of the point for a configuration, if measured before.
    pub fn find_index(&self, config: &Configuration) -> Option<usize> {
        self.by_config
            .get(&config_hash(config))?
            .iter()
            .map(|&i| i as usize)
            .find(|&i| self.points[i].config == *config)
    }

    /// Replaces the metrics of an existing configuration or appends a new
    /// point (online-learning update).
    pub fn upsert(&mut self, point: OperatingPoint) {
        match self.find_index(&point.config) {
            Some(i) => {
                let idx = i as u32;
                let old = std::mem::take(&mut self.points[i].metrics);
                for (id, value) in old {
                    unindex_metric(&mut self.columns, id, value, idx);
                }
                for &(id, value) in &point.metrics {
                    index_metric(&mut self.columns, id, value, idx);
                }
                self.points[i].metrics = point.metrics;
            }
            None => self.push(point),
        }
    }

    /// Blends new metrics into an existing point with learning rate
    /// `alpha` (`new = old + alpha * (measured - old)`); appends when the
    /// configuration is unknown. This is the paper's "continuous on-line
    /// learning ... to update the knowledge from the data collected by the
    /// monitors". Each touched metric's column entry is moved in place.
    pub fn learn(&mut self, point: OperatingPoint, alpha: f64) {
        match self.find_index(&point.config) {
            Some(i) => {
                let idx = i as u32;
                for (id, measured) in point.metrics {
                    let at = self.points[i].metrics.iter().position(|(o, _)| *o == id);
                    match at {
                        Some(at) => {
                            let old = self.points[i].metrics[at].1;
                            let new = old + alpha * (measured - old);
                            self.points[i].metrics[at].1 = new;
                            unindex_metric(&mut self.columns, id, old, idx);
                            index_metric(&mut self.columns, id, new, idx);
                        }
                        None => {
                            self.points[i].set_metric(id, measured);
                            index_metric(&mut self.columns, id, measured, idx);
                        }
                    }
                }
            }
            None => self.push(point),
        }
    }

    /// The Pareto-optimal subset with respect to the given metrics (all
    /// minimized). A point is dominated if another is no worse on every
    /// metric and strictly better on one.
    pub fn pareto(&self, metrics: &[&str]) -> Vec<&OperatingPoint> {
        let ids: Vec<Option<SymbolId>> = metrics.iter().map(|m| lookup(m)).collect();
        self.points
            .iter()
            .filter(|p| {
                !self.points.iter().any(|q| {
                    if std::ptr::eq(*p, q) {
                        return false;
                    }
                    let mut strictly_better = false;
                    for id in &ids {
                        let (Some(pv), Some(qv)) = (
                            id.and_then(|id| p.metric_id(id)),
                            id.and_then(|id| q.metric_id(id)),
                        ) else {
                            return false;
                        };
                        if qv > pv {
                            return false;
                        }
                        if qv < pv {
                            strictly_better = true;
                        }
                    }
                    strictly_better
                })
            })
            .collect()
    }
}

fn index_metric(columns: &mut HashMap<SymbolId, MetricColumn>, id: SymbolId, value: f64, idx: u32) {
    let column = columns.entry(id).or_default();
    match sort_key(value) {
        Some(key) => {
            column.sorted.insert((key, idx));
        }
        None => column.nans += 1,
    }
}

fn unindex_metric(
    columns: &mut HashMap<SymbolId, MetricColumn>,
    id: SymbolId,
    value: f64,
    idx: u32,
) {
    if let Some(column) = columns.get_mut(&id) {
        match sort_key(value) {
            Some(key) => {
                column.sorted.remove(&(key, idx));
            }
            None => column.nans = column.nans.saturating_sub(1),
        }
    }
}

impl FromIterator<OperatingPoint> for KnowledgeBase {
    fn from_iter<I: IntoIterator<Item = OperatingPoint>>(iter: I) -> Self {
        let mut kb = KnowledgeBase::new();
        kb.extend(iter);
        kb
    }
}

impl Extend<OperatingPoint> for KnowledgeBase {
    fn extend<I: IntoIterator<Item = OperatingPoint>>(&mut self, iter: I) {
        for point in iter {
            self.push(point);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knob::KnobValue;

    fn point(unroll: i64, time: f64, energy: f64) -> OperatingPoint {
        let mut config = Configuration::new();
        config.set("unroll", KnobValue::Int(unroll));
        OperatingPoint::new(
            config,
            [("time".to_string(), time), ("energy".to_string(), energy)],
        )
    }

    fn kb() -> KnowledgeBase {
        [
            point(1, 4.0, 1.0),
            point(2, 2.0, 2.0),
            point(4, 1.0, 4.0),
            point(8, 0.9, 8.0),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn best_under_objective() {
        let kb = kb();
        let best = kb.best(&Objective::minimize("time"), &[]).unwrap();
        assert_eq!(best.config.get_int("unroll"), Some(8));
        let best = kb.best(&Objective::minimize("energy"), &[]).unwrap();
        assert_eq!(best.config.get_int("unroll"), Some(1));
        let best = kb.best(&Objective::maximize("time"), &[]).unwrap();
        assert_eq!(best.config.get_int("unroll"), Some(1));
    }

    #[test]
    fn constraints_filter_candidates() {
        let kb = kb();
        let constraints = [Constraint::at_most("energy", 4.0)];
        let best = kb.best(&Objective::minimize("time"), &constraints).unwrap();
        assert_eq!(
            best.config.get_int("unroll"),
            Some(4),
            "unroll=8 violates energy cap"
        );
        let impossible = [Constraint::at_most("energy", 0.5)];
        assert!(kb.best(&Objective::minimize("time"), &impossible).is_none());
    }

    #[test]
    fn missing_metric_fails_constraints() {
        let mut config = Configuration::new();
        config.set("unroll", KnobValue::Int(16));
        let p = OperatingPoint::new(config, [("time".to_string(), 0.1)]);
        assert!(!p.satisfies(&[Constraint::at_most("energy", 100.0)]));
    }

    #[test]
    fn upsert_replaces_in_place() {
        let mut kb = kb();
        kb.upsert(point(2, 99.0, 99.0));
        assert_eq!(kb.len(), 4);
        assert_eq!(
            kb.find(&point(2, 0.0, 0.0).config).unwrap().metric("time"),
            Some(99.0)
        );
    }

    #[test]
    fn learn_blends_with_alpha() {
        let mut kb = kb();
        kb.learn(point(2, 4.0, 4.0), 0.5);
        let p = kb.find(&point(2, 0.0, 0.0).config).unwrap();
        assert_eq!(p.metric("time"), Some(3.0), "2.0 + 0.5 * (4.0 - 2.0)");
        // unknown config appends
        kb.learn(point(32, 1.0, 1.0), 0.5);
        assert_eq!(kb.len(), 5);
    }

    #[test]
    fn pareto_front() {
        let kb = kb();
        let front = kb.pareto(&["time", "energy"]);
        // all four are non-dominated (time strictly decreasing, energy increasing)
        assert_eq!(front.len(), 4);
        let mut kb2 = kb.clone();
        kb2.push(point(16, 2.5, 3.0)); // dominated by unroll=2 (2.0, 2.0)
        assert_eq!(kb2.pareto(&["time", "energy"]).len(), 4);
    }

    #[test]
    fn indexed_best_tracks_learned_updates() {
        let mut kb = kb();
        // unroll=1 learns its way to the fastest point
        kb.learn(point(1, 0.1, 1.0), 1.0);
        let best = kb.best(&Objective::minimize("time"), &[]).unwrap();
        assert_eq!(best.config.get_int("unroll"), Some(1));
        assert_eq!(
            kb.best_linear(&Objective::minimize("time"), &[])
                .unwrap()
                .config
                .get_int("unroll"),
            Some(1)
        );
        // ...and upsert moves it back out of first place
        kb.upsert(point(1, 40.0, 1.0));
        let best = kb.best(&Objective::minimize("time"), &[]).unwrap();
        assert_eq!(best.config.get_int("unroll"), Some(8));
    }

    #[test]
    fn indexed_best_tie_breaks_to_earliest_point() {
        let kb: KnowledgeBase = [point(3, 5.0, 1.0), point(1, 5.0, 2.0), point(7, 5.0, 3.0)]
            .into_iter()
            .collect();
        for objective in [Objective::minimize("time"), Objective::maximize("time")] {
            let indexed = kb.best(&objective, &[]).unwrap();
            let linear = kb.best_linear(&objective, &[]).unwrap();
            assert_eq!(indexed.config.get_int("unroll"), Some(3));
            assert_eq!(indexed, linear);
        }
    }

    #[test]
    fn nan_metrics_fall_back_to_the_linear_reference() {
        let mut kb = kb();
        kb.push(point(16, f64::NAN, 1.0));
        let objective = Objective::minimize("time");
        // compare configs: a NaN-metric point is not `==` to itself
        assert_eq!(
            kb.best(&objective, &[]).map(|p| &p.config),
            kb.best_linear(&objective, &[]).map(|p| &p.config)
        );
        // replacing the NaN restores the indexed path
        kb.upsert(point(16, 0.5, 1.0));
        let best = kb.best(&objective, &[]).unwrap();
        assert_eq!(best.config.get_int("unroll"), Some(16));
    }

    #[test]
    fn negative_zero_metric_ties_with_positive_zero() {
        let kb: KnowledgeBase = [point(1, -0.0, 1.0), point(2, 0.0, 1.0)]
            .into_iter()
            .collect();
        let objective = Objective::minimize("time");
        assert_eq!(
            kb.best(&objective, &[]).unwrap().config.get_int("unroll"),
            kb.best_linear(&objective, &[])
                .unwrap()
                .config
                .get_int("unroll"),
        );
    }

    #[test]
    fn find_is_a_verified_hash_probe() {
        let kb = kb();
        assert!(kb.find(&point(2, 0.0, 0.0).config).is_some());
        assert!(kb.find(&point(3, 0.0, 0.0).config).is_none());
        // float knobs: -0.0 and 0.0 configurations are the same key
        let mut neg = Configuration::new();
        neg.set("alpha", KnobValue::Float(-0.0));
        let mut pos = Configuration::new();
        pos.set("alpha", KnobValue::Float(0.0));
        let mut kb2 = KnowledgeBase::new();
        kb2.push(OperatingPoint::new(neg, [("time".to_string(), 1.0)]));
        assert!(kb2.find(&pos).is_some());
    }

    #[test]
    fn metrics_iterate_in_name_order() {
        let p = point(1, 4.0, 1.0);
        let names: Vec<&str> = p.metrics().map(|(n, _)| n).collect();
        assert_eq!(names, ["energy", "time"]);
        assert_eq!(p.metric_count(), 2);
    }
}
