//! Operating points and the design-time knowledge base.
//!
//! An operating point pairs a configuration with the metrics measured for
//! it (time, energy, quality, ...). The knowledge base is what design-time
//! exploration hands to the runtime manager — mARGOt's list of operating
//! points, filtered by constraints and ranked by the objective at runtime.

use crate::goal::{Constraint, Objective};
use crate::space::Configuration;
use std::collections::BTreeMap;

/// A configuration plus its measured metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingPoint {
    /// The knob settings.
    pub config: Configuration,
    /// Measured metrics by name (e.g. `"time"`, `"energy"`, `"error"`).
    pub metrics: BTreeMap<String, f64>,
}

impl OperatingPoint {
    /// Creates an operating point.
    pub fn new(config: Configuration, metrics: impl IntoIterator<Item = (String, f64)>) -> Self {
        OperatingPoint {
            config,
            metrics: metrics.into_iter().collect(),
        }
    }

    /// A metric value.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics.get(name).copied()
    }

    /// Returns `true` if every constraint is met (missing metrics fail).
    pub fn satisfies(&self, constraints: &[Constraint]) -> bool {
        constraints
            .iter()
            .all(|c| self.metric(c.metric()).is_some_and(|v| c.satisfied_by(v)))
    }
}

/// The list of known operating points.
///
/// # Examples
///
/// ```
/// use antarex_tuner::{Configuration, KnowledgeBase, OperatingPoint};
/// use antarex_tuner::goal::{Constraint, Objective};
///
/// let mut kb = KnowledgeBase::new();
/// let mut slow = Configuration::new();
/// slow.set("unroll", antarex_tuner::KnobValue::Int(1));
/// kb.push(OperatingPoint::new(
///     slow,
///     [("time".to_string(), 2.0), ("energy".to_string(), 1.0)],
/// ));
/// let best = kb.best(&Objective::minimize("time"), &[]).unwrap();
/// assert_eq!(best.metric("time"), Some(2.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KnowledgeBase {
    points: Vec<OperatingPoint>,
}

impl KnowledgeBase {
    /// Creates an empty knowledge base.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a point.
    pub fn push(&mut self, point: OperatingPoint) {
        self.points.push(point);
    }

    /// All points.
    pub fn points(&self) -> &[OperatingPoint] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the base is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Points satisfying every constraint.
    pub fn feasible<'a>(
        &'a self,
        constraints: &'a [Constraint],
    ) -> impl Iterator<Item = &'a OperatingPoint> {
        self.points.iter().filter(move |p| p.satisfies(constraints))
    }

    /// The best feasible point under the objective: mARGOt's runtime
    /// selection. Ties resolve to the earliest point.
    pub fn best(
        &self,
        objective: &Objective,
        constraints: &[Constraint],
    ) -> Option<&OperatingPoint> {
        let mut best: Option<(&OperatingPoint, f64)> = None;
        for point in self.points.iter().filter(|p| p.satisfies(constraints)) {
            let Some(value) = point.metric(objective.metric()) else {
                continue;
            };
            let score = objective.score(value);
            match &best {
                Some((_, best_score)) if *best_score >= score => {}
                _ => best = Some((point, score)),
            }
        }
        best.map(|(p, _)| p)
    }

    /// Looks up the point for a configuration, if measured before.
    pub fn find(&self, config: &Configuration) -> Option<&OperatingPoint> {
        self.points.iter().find(|p| &p.config == config)
    }

    /// Replaces the metrics of an existing configuration or appends a new
    /// point (online-learning update).
    pub fn upsert(&mut self, point: OperatingPoint) {
        match self.points.iter_mut().find(|p| p.config == point.config) {
            Some(existing) => existing.metrics = point.metrics,
            None => self.points.push(point),
        }
    }

    /// Blends new metrics into an existing point with learning rate
    /// `alpha` (`new = old + alpha * (measured - old)`); appends when the
    /// configuration is unknown. This is the paper's "continuous on-line
    /// learning ... to update the knowledge from the data collected by the
    /// monitors".
    pub fn learn(&mut self, point: OperatingPoint, alpha: f64) {
        match self.points.iter_mut().find(|p| p.config == point.config) {
            Some(existing) => {
                for (name, value) in point.metrics {
                    existing
                        .metrics
                        .entry(name)
                        .and_modify(|old| *old += alpha * (value - *old))
                        .or_insert(value);
                }
            }
            None => self.points.push(point),
        }
    }

    /// The Pareto-optimal subset with respect to the given metrics (all
    /// minimized). A point is dominated if another is no worse on every
    /// metric and strictly better on one.
    pub fn pareto(&self, metrics: &[&str]) -> Vec<&OperatingPoint> {
        self.points
            .iter()
            .filter(|p| {
                !self.points.iter().any(|q| {
                    if std::ptr::eq(*p, q) {
                        return false;
                    }
                    let mut strictly_better = false;
                    for m in metrics {
                        let (Some(pv), Some(qv)) = (p.metric(m), q.metric(m)) else {
                            return false;
                        };
                        if qv > pv {
                            return false;
                        }
                        if qv < pv {
                            strictly_better = true;
                        }
                    }
                    strictly_better
                })
            })
            .collect()
    }
}

impl FromIterator<OperatingPoint> for KnowledgeBase {
    fn from_iter<I: IntoIterator<Item = OperatingPoint>>(iter: I) -> Self {
        KnowledgeBase {
            points: iter.into_iter().collect(),
        }
    }
}

impl Extend<OperatingPoint> for KnowledgeBase {
    fn extend<I: IntoIterator<Item = OperatingPoint>>(&mut self, iter: I) {
        self.points.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knob::KnobValue;

    fn point(unroll: i64, time: f64, energy: f64) -> OperatingPoint {
        let mut config = Configuration::new();
        config.set("unroll", KnobValue::Int(unroll));
        OperatingPoint::new(
            config,
            [("time".to_string(), time), ("energy".to_string(), energy)],
        )
    }

    fn kb() -> KnowledgeBase {
        [
            point(1, 4.0, 1.0),
            point(2, 2.0, 2.0),
            point(4, 1.0, 4.0),
            point(8, 0.9, 8.0),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn best_under_objective() {
        let kb = kb();
        let best = kb.best(&Objective::minimize("time"), &[]).unwrap();
        assert_eq!(best.config.get_int("unroll"), Some(8));
        let best = kb.best(&Objective::minimize("energy"), &[]).unwrap();
        assert_eq!(best.config.get_int("unroll"), Some(1));
        let best = kb.best(&Objective::maximize("time"), &[]).unwrap();
        assert_eq!(best.config.get_int("unroll"), Some(1));
    }

    #[test]
    fn constraints_filter_candidates() {
        let kb = kb();
        let constraints = [Constraint::at_most("energy", 4.0)];
        let best = kb.best(&Objective::minimize("time"), &constraints).unwrap();
        assert_eq!(
            best.config.get_int("unroll"),
            Some(4),
            "unroll=8 violates energy cap"
        );
        let impossible = [Constraint::at_most("energy", 0.5)];
        assert!(kb.best(&Objective::minimize("time"), &impossible).is_none());
    }

    #[test]
    fn missing_metric_fails_constraints() {
        let mut config = Configuration::new();
        config.set("unroll", KnobValue::Int(16));
        let p = OperatingPoint::new(config, [("time".to_string(), 0.1)]);
        assert!(!p.satisfies(&[Constraint::at_most("energy", 100.0)]));
    }

    #[test]
    fn upsert_replaces_in_place() {
        let mut kb = kb();
        kb.upsert(point(2, 99.0, 99.0));
        assert_eq!(kb.len(), 4);
        assert_eq!(
            kb.find(&point(2, 0.0, 0.0).config).unwrap().metric("time"),
            Some(99.0)
        );
    }

    #[test]
    fn learn_blends_with_alpha() {
        let mut kb = kb();
        kb.learn(point(2, 4.0, 4.0), 0.5);
        let p = kb.find(&point(2, 0.0, 0.0).config).unwrap();
        assert_eq!(p.metric("time"), Some(3.0), "2.0 + 0.5 * (4.0 - 2.0)");
        // unknown config appends
        kb.learn(point(32, 1.0, 1.0), 0.5);
        assert_eq!(kb.len(), 5);
    }

    #[test]
    fn pareto_front() {
        let kb = kb();
        let front = kb.pareto(&["time", "energy"]);
        // all four are non-dominated (time strictly decreasing, energy increasing)
        assert_eq!(front.len(), 4);
        let mut kb2 = kb.clone();
        kb2.push(point(16, 2.5, 3.0)); // dominated by unroll=2 (2.0, 2.0)
        assert_eq!(kb2.pareto(&["time", "energy"]).len(), 4);
    }
}
