//! Symbol interning for knob and metric names.
//!
//! The autotuning hot path — select, learn, observe, cache probes —
//! used to compare and clone `String` keys on every operation. Interning
//! maps each distinct name to a dense [`SymbolId`] (a `u32`) exactly
//! once; after that, every comparison is an integer compare and every
//! "key" in a configuration or metric column is `Copy`. Strings survive
//! only at API boundaries: callers still pass `&str`, reports still
//! print names, but nothing on the per-request path allocates.
//!
//! The table is process-global and append-only. Interned names are
//! leaked (`Box::leak`) so resolution hands out `&'static str` without
//! holding any lock across the caller's use. The set of distinct names
//! in a tuning deployment is small and fixed (knobs and metrics of the
//! registered applications), so the leak is bounded by design.
//!
//! Determinism: ids are assigned in first-intern order, which is a pure
//! function of program execution. No observable behaviour depends on
//! the numeric id values — [`crate::space::Configuration`] and
//! [`crate::point::OperatingPoint`] keep their entries ordered by
//! *name*, so iteration order, `Display` output, and tie-breaking are
//! byte-identical to the pre-interning string implementation.

use std::collections::HashMap;
use std::sync::{OnceLock, RwLock};

/// A dense identifier for an interned knob or metric name.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymbolId(u32);

impl std::fmt::Debug for SymbolId {
    /// Prints the interned *name*, not the numeric id: first-intern
    /// order can differ across processes (worker threads race to intern
    /// new names), so ids must never leak into reports that are
    /// byte-compared across runs.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.name())
    }
}

impl SymbolId {
    /// The raw dense index (0-based, in first-intern order).
    pub fn index(self) -> u32 {
        self.0
    }

    /// The interned name.
    pub fn name(self) -> &'static str {
        resolve(self)
    }
}

impl std::fmt::Display for SymbolId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[derive(Default)]
struct Interner {
    names: Vec<&'static str>,
    by_name: HashMap<&'static str, u32>,
}

fn table() -> &'static RwLock<Interner> {
    static TABLE: OnceLock<RwLock<Interner>> = OnceLock::new();
    TABLE.get_or_init(|| RwLock::new(Interner::default()))
}

/// Interns `name`, returning its stable [`SymbolId`]. The first call
/// for a given name takes the write lock and leaks one copy of the
/// string; every later call is a read-locked hash probe.
pub fn intern(name: &str) -> SymbolId {
    if let Some(id) = lookup(name) {
        return id;
    }
    let mut interner = match table().write() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    // double-check: another thread may have interned between the probe
    // and the write lock
    if let Some(&id) = interner.by_name.get(name) {
        return SymbolId(id);
    }
    let id = u32::try_from(interner.names.len()).expect("symbol table overflow");
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    interner.names.push(leaked);
    interner.by_name.insert(leaked, id);
    SymbolId(id)
}

/// Looks up an already-interned name without growing the table.
pub fn lookup(name: &str) -> Option<SymbolId> {
    let interner = match table().read() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    interner.by_name.get(name).map(|&id| SymbolId(id))
}

/// Resolves an id back to its name.
///
/// # Panics
///
/// Panics if `id` was not produced by [`intern`] in this process.
pub fn resolve(id: SymbolId) -> &'static str {
    let interner = match table().read() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    interner.names[id.0 as usize]
}

/// Number of distinct names interned so far (diagnostics).
pub fn len() -> usize {
    let interner = match table().read() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    interner.names.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = intern("intern-test-latency");
        let b = intern("intern-test-latency");
        assert_eq!(a, b);
        assert_eq!(a.name(), "intern-test-latency");
        assert_eq!(lookup("intern-test-latency"), Some(a));
    }

    #[test]
    fn distinct_names_get_distinct_ids() {
        let a = intern("intern-test-a");
        let b = intern("intern-test-b");
        assert_ne!(a, b);
        assert_ne!(a.index(), b.index());
        assert_eq!(resolve(a), "intern-test-a");
        assert_eq!(resolve(b), "intern-test-b");
    }

    #[test]
    fn lookup_does_not_grow_the_table() {
        let before = len();
        assert_eq!(lookup("intern-test-never-interned-xyzzy"), None);
        assert_eq!(len(), before);
    }

    #[test]
    fn concurrent_interning_agrees() {
        let ids: Vec<SymbolId> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| intern("intern-test-contended")))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn display_prints_the_name() {
        let id = intern("intern-test-display");
        assert_eq!(id.to_string(), "intern-test-display");
    }
}
