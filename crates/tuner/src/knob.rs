//! Software knobs: the tunable parameters the DSL exposes.
//!
//! The paper's knob taxonomy (§I, §IV): *application parameters* (numeric
//! knobs), *code transformations* (e.g. unroll factors — integer knobs),
//! and *code variants* (categorical knobs naming alternative functions).

use std::fmt;

/// The value a knob is set to.
#[derive(Debug, Clone, PartialEq, PartialOrd)]
pub enum KnobValue {
    /// Integer setting.
    Int(i64),
    /// Floating-point setting.
    Float(f64),
    /// Categorical setting (e.g. a code-variant name).
    Choice(String),
}

impl KnobValue {
    /// Integer view.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            KnobValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Float view (ints promote).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            KnobValue::Int(v) => Some(*v as f64),
            KnobValue::Float(v) => Some(*v),
            KnobValue::Choice(_) => None,
        }
    }

    /// Choice view.
    pub fn as_choice(&self) -> Option<&str> {
        match self {
            KnobValue::Choice(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for KnobValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KnobValue::Int(v) => write!(f, "{v}"),
            KnobValue::Float(v) => write!(f, "{v}"),
            KnobValue::Choice(s) => write!(f, "{s}"),
        }
    }
}

/// The domain of one knob.
#[derive(Debug, Clone, PartialEq)]
pub enum KnobDomain {
    /// Integers `lo..=hi` with the given step.
    Int {
        /// Lower bound (inclusive).
        lo: i64,
        /// Upper bound (inclusive).
        hi: i64,
        /// Step between admissible values (≥ 1).
        step: i64,
    },
    /// An explicit, sorted list of integer levels (produced by
    /// [`Knob::restrict`] when the survivors are not uniformly spaced).
    IntLevels(Vec<i64>),
    /// An explicit list of float levels.
    FloatLevels(Vec<f64>),
    /// Categorical alternatives.
    Choices(Vec<String>),
}

/// A named tunable parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Knob {
    name: String,
    domain: KnobDomain,
}

impl Knob {
    /// Integer knob over `lo..=hi` stepping by `step`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `step < 1`.
    pub fn int(name: impl Into<String>, lo: i64, hi: i64, step: i64) -> Self {
        assert!(lo <= hi, "empty integer domain");
        assert!(step >= 1, "step must be at least 1");
        Knob {
            name: name.into(),
            domain: KnobDomain::Int { lo, hi, step },
        }
    }

    /// Float knob over explicit levels.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty.
    pub fn float_levels(name: impl Into<String>, levels: impl IntoIterator<Item = f64>) -> Self {
        let levels: Vec<f64> = levels.into_iter().collect();
        assert!(!levels.is_empty(), "empty float domain");
        Knob {
            name: name.into(),
            domain: KnobDomain::FloatLevels(levels),
        }
    }

    /// Categorical knob.
    ///
    /// # Panics
    ///
    /// Panics if `choices` is empty.
    pub fn choice<S: Into<String>>(
        name: impl Into<String>,
        choices: impl IntoIterator<Item = S>,
    ) -> Self {
        let choices: Vec<String> = choices.into_iter().map(Into::into).collect();
        assert!(!choices.is_empty(), "empty choice domain");
        Knob {
            name: name.into(),
            domain: KnobDomain::Choices(choices),
        }
    }

    /// Knob name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The domain.
    pub fn domain(&self) -> &KnobDomain {
        &self.domain
    }

    /// Integer knob over explicit levels.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty.
    pub fn int_levels(name: impl Into<String>, levels: impl IntoIterator<Item = i64>) -> Self {
        let levels: Vec<i64> = levels.into_iter().collect();
        assert!(!levels.is_empty(), "empty integer domain");
        Knob {
            name: name.into(),
            domain: KnobDomain::IntLevels(levels),
        }
    }

    /// Number of admissible values.
    pub fn cardinality(&self) -> usize {
        match &self.domain {
            KnobDomain::Int { lo, hi, step } => ((hi - lo) / step + 1) as usize,
            KnobDomain::IntLevels(levels) => levels.len(),
            KnobDomain::FloatLevels(levels) => levels.len(),
            KnobDomain::Choices(choices) => choices.len(),
        }
    }

    /// The `index`-th admissible value (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `index >= cardinality()`.
    pub fn value_at(&self, index: usize) -> KnobValue {
        match &self.domain {
            KnobDomain::Int { lo, step, .. } => KnobValue::Int(lo + (index as i64) * step),
            KnobDomain::IntLevels(levels) => KnobValue::Int(levels[index]),
            KnobDomain::FloatLevels(levels) => KnobValue::Float(levels[index]),
            KnobDomain::Choices(choices) => KnobValue::Choice(choices[index].clone()),
        }
    }

    /// Index of a value within the domain, if admissible.
    pub fn index_of(&self, value: &KnobValue) -> Option<usize> {
        match (&self.domain, value) {
            (KnobDomain::Int { lo, hi, step }, KnobValue::Int(v)) => {
                if v < lo || v > hi || (v - lo) % step != 0 {
                    None
                } else {
                    Some(((v - lo) / step) as usize)
                }
            }
            (KnobDomain::IntLevels(levels), KnobValue::Int(v)) => {
                levels.iter().position(|l| l == v)
            }
            (KnobDomain::FloatLevels(levels), KnobValue::Float(v)) => {
                levels.iter().position(|l| l == v)
            }
            (KnobDomain::Choices(choices), KnobValue::Choice(c)) => {
                choices.iter().position(|x| x == c)
            }
            _ => None,
        }
    }

    /// Restricts the domain to values accepted by `keep`, returning the
    /// shrunk knob (grey-box annotation support). Returns `None` if nothing
    /// survives.
    pub fn restrict(&self, keep: impl Fn(&KnobValue) -> bool) -> Option<Knob> {
        let surviving: Vec<usize> = (0..self.cardinality())
            .filter(|&i| keep(&self.value_at(i)))
            .collect();
        if surviving.is_empty() {
            return None;
        }
        let domain = match &self.domain {
            KnobDomain::Int { .. } | KnobDomain::IntLevels(_) => {
                let values: Vec<i64> = surviving
                    .iter()
                    .map(|&i| self.value_at(i).as_int().expect("int domain"))
                    .collect();
                // keep a stepped range when the survivors stay uniform,
                // otherwise an explicit integer level list
                if let Some(step) = uniform_step(&values) {
                    KnobDomain::Int {
                        lo: values[0],
                        hi: *values.last().expect("non-empty"),
                        step,
                    }
                } else {
                    KnobDomain::IntLevels(values)
                }
            }
            KnobDomain::FloatLevels(levels) => {
                KnobDomain::FloatLevels(surviving.iter().map(|&i| levels[i]).collect())
            }
            KnobDomain::Choices(choices) => {
                KnobDomain::Choices(surviving.iter().map(|&i| choices[i].clone()).collect())
            }
        };
        Some(Knob {
            name: self.name.clone(),
            domain,
        })
    }
}

fn uniform_step(values: &[i64]) -> Option<i64> {
    if values.len() < 2 {
        return Some(1);
    }
    let step = values[1] - values[0];
    if step < 1 {
        return None;
    }
    values
        .windows(2)
        .all(|w| w[1] - w[0] == step)
        .then_some(step)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_knob_enumeration() {
        let k = Knob::int("unroll", 1, 9, 2);
        assert_eq!(k.cardinality(), 5);
        assert_eq!(k.value_at(0), KnobValue::Int(1));
        assert_eq!(k.value_at(4), KnobValue::Int(9));
        assert_eq!(k.index_of(&KnobValue::Int(5)), Some(2));
        assert_eq!(k.index_of(&KnobValue::Int(4)), None, "off-step");
        assert_eq!(k.index_of(&KnobValue::Int(11)), None, "out of range");
    }

    #[test]
    fn choice_knob() {
        let k = Knob::choice("variant", ["a", "b", "c"]);
        assert_eq!(k.cardinality(), 3);
        assert_eq!(k.value_at(1), KnobValue::Choice("b".into()));
        assert_eq!(k.index_of(&KnobValue::Choice("c".into())), Some(2));
        assert_eq!(k.index_of(&KnobValue::Int(0)), None, "type mismatch");
    }

    #[test]
    fn float_levels_knob() {
        let k = Knob::float_levels("alpha", [0.1, 0.5, 0.9]);
        assert_eq!(k.cardinality(), 3);
        assert_eq!(k.value_at(2), KnobValue::Float(0.9));
    }

    #[test]
    fn restrict_shrinks_domain() {
        let k = Knob::int("unroll", 1, 16, 1);
        let shrunk = k
            .restrict(|v| v.as_int().is_some_and(|i| i > 0 && (i & (i - 1)) == 0))
            .unwrap();
        assert_eq!(shrunk.cardinality(), 5, "1, 2, 4, 8, 16");
        // non-uniform gaps fall back to explicit integer levels
        assert!(matches!(shrunk.domain(), KnobDomain::IntLevels(_)));
        assert_eq!(shrunk.value_at(4), KnobValue::Int(16));
        assert_eq!(shrunk.index_of(&KnobValue::Int(8)), Some(3));
        let even = k
            .restrict(|v| v.as_int().is_some_and(|i| i % 2 == 0))
            .unwrap();
        assert!(matches!(even.domain(), KnobDomain::Int { step: 2, .. }));
        assert!(k.restrict(|_| false).is_none());
    }

    #[test]
    fn value_conversions() {
        assert_eq!(KnobValue::Int(4).as_float(), Some(4.0));
        assert_eq!(KnobValue::Choice("x".into()).as_float(), None);
        assert_eq!(KnobValue::Float(0.5).as_int(), None);
    }

    #[test]
    #[should_panic(expected = "empty integer domain")]
    fn inverted_bounds_panic() {
        let _ = Knob::int("x", 5, 1, 1);
    }
}
