//! Design-space exploration: building the knowledge base at design time.
//!
//! DSE runs a search technique against an evaluator that returns *all*
//! metrics of a configuration (not just a scalar cost) and records every
//! evaluation as an operating point. The resulting
//! [`crate::point::KnowledgeBase`] is handed to the runtime
//! [`AppManager`](crate::manager::AppManager).

use crate::goal::Objective;
use crate::point::{KnowledgeBase, OperatingPoint};
use crate::search::SearchTechnique;
use crate::space::{Configuration, DesignSpace};
use rand::RngCore;
use std::collections::BTreeMap;

/// Result of a design-space exploration run.
#[derive(Debug, Clone)]
pub struct DseReport {
    /// Every evaluated operating point.
    pub knowledge: KnowledgeBase,
    /// Evaluations performed.
    pub evaluations: usize,
    /// Best configuration under the DSE objective.
    pub best: Option<Configuration>,
}

impl DseReport {
    /// The Pareto-optimal operating points under the given metrics (all
    /// minimized) — the multi-objective view the runtime manager filters
    /// at deployment time.
    pub fn pareto(&self, metrics: &[&str]) -> Vec<&crate::point::OperatingPoint> {
        self.knowledge.pareto(metrics)
    }
}

/// Explores the design space, measuring all metrics per configuration.
///
/// `eval` returns named metrics; `objective` steers the search (its metric
/// is used as the scalar cost signal for the technique).
///
/// # Examples
///
/// ```
/// use antarex_tuner::dse::explore;
/// use antarex_tuner::goal::Objective;
/// use antarex_tuner::knob::Knob;
/// use antarex_tuner::search::exhaustive::Exhaustive;
/// use antarex_tuner::space::DesignSpace;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let space = DesignSpace::new(vec![Knob::int("n", 1, 4, 1)]);
/// let mut rng = StdRng::seed_from_u64(0);
/// let report = explore(
///     &space,
///     Box::new(Exhaustive::new()),
///     &Objective::minimize("time"),
///     100,
///     &mut rng,
///     |cfg| {
///         let n = cfg.get_int("n").unwrap() as f64;
///         [("time".to_string(), 10.0 / n), ("energy".to_string(), n)].into()
///     },
/// );
/// assert_eq!(report.evaluations, 4);
/// assert_eq!(report.best.unwrap().get_int("n"), Some(4));
/// ```
pub fn explore(
    space: &DesignSpace,
    mut technique: Box<dyn SearchTechnique>,
    objective: &Objective,
    budget: usize,
    rng: &mut dyn RngCore,
    mut eval: impl FnMut(&Configuration) -> BTreeMap<String, f64>,
) -> DseReport {
    let mut knowledge = KnowledgeBase::new();
    let mut best: Option<(Configuration, f64)> = None;
    let mut evaluations = 0;
    let mut proposals = 0;
    let cap = budget.saturating_mul(10).max(budget);
    while evaluations < budget && proposals < cap {
        let Some(config) = technique.propose(space, rng) else {
            break;
        };
        proposals += 1;
        if let Some(point) = knowledge.find(&config) {
            if let Some(value) = point.metric(objective.metric()) {
                technique.feedback(&config, -objective.score(value));
            }
            continue;
        }
        let metrics = eval(&config);
        evaluations += 1;
        let value = metrics.get(objective.metric()).copied();
        knowledge.push(OperatingPoint::new(config.clone(), metrics));
        if let Some(value) = value {
            let score = objective.score(value);
            if best.as_ref().is_none_or(|(_, b)| score > *b) {
                best = Some((config.clone(), score));
            }
            // techniques minimize: negate the score
            technique.feedback(&config, -score);
        }
    }
    DseReport {
        knowledge,
        evaluations,
        best: best.map(|(c, _)| c),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knob::Knob;
    use crate::search::exhaustive::Exhaustive;
    use crate::search::random::RandomSearch;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> DesignSpace {
        DesignSpace::new(vec![Knob::int("unroll", 1, 8, 1)])
    }

    fn metrics(cfg: &Configuration) -> BTreeMap<String, f64> {
        let u = cfg.get_int("unroll").unwrap() as f64;
        [
            ("time".to_string(), 16.0 / u),
            ("energy".to_string(), u * u),
        ]
        .into()
    }

    #[test]
    fn exhaustive_dse_builds_full_knowledge_base() {
        let mut rng = StdRng::seed_from_u64(0);
        let report = explore(
            &space(),
            Box::new(Exhaustive::new()),
            &Objective::minimize("time"),
            100,
            &mut rng,
            metrics,
        );
        assert_eq!(report.knowledge.len(), 8);
        assert_eq!(report.best.unwrap().get_int("unroll"), Some(8));
        // both metrics recorded
        let p = &report.knowledge.points()[0];
        assert!(p.metric("time").is_some() && p.metric("energy").is_some());
    }

    #[test]
    fn maximize_objective_flips_best() {
        let mut rng = StdRng::seed_from_u64(0);
        let report = explore(
            &space(),
            Box::new(Exhaustive::new()),
            &Objective::maximize("time"),
            100,
            &mut rng,
            metrics,
        );
        assert_eq!(report.best.unwrap().get_int("unroll"), Some(1));
    }

    #[test]
    fn budget_limits_evaluations() {
        let mut rng = StdRng::seed_from_u64(1);
        let report = explore(
            &space(),
            Box::new(RandomSearch::new()),
            &Objective::minimize("time"),
            3,
            &mut rng,
            metrics,
        );
        assert_eq!(report.evaluations, 3);
        assert_eq!(report.knowledge.len(), 3);
    }

    #[test]
    fn pareto_view_of_the_exploration() {
        let mut rng = StdRng::seed_from_u64(0);
        let report = explore(
            &space(),
            Box::new(Exhaustive::new()),
            &Objective::minimize("time"),
            100,
            &mut rng,
            metrics,
        );
        let front = report.pareto(&["time", "energy"]);
        // time = 16/u (decreasing), energy = u^2 (increasing): every
        // point is non-dominated
        assert_eq!(front.len(), 8);
    }

    #[test]
    fn duplicate_proposals_reuse_cache() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut calls = 0;
        let report = explore(
            &space(),
            Box::new(RandomSearch::new()),
            &Objective::minimize("time"),
            50,
            &mut rng,
            |cfg| {
                calls += 1;
                metrics(cfg)
            },
        );
        assert!(calls <= 8, "only 8 distinct configurations exist");
        assert_eq!(report.evaluations, calls);
    }
}
