//! Design-space exploration: building the knowledge base at design time.
//!
//! DSE runs a search technique against an evaluator that returns *all*
//! metrics of a configuration (not just a scalar cost) and records every
//! evaluation as an operating point. The resulting
//! [`crate::point::KnowledgeBase`] is handed to the runtime
//! [`AppManager`](crate::manager::AppManager).

use crate::goal::Objective;
use crate::point::{KnowledgeBase, OperatingPoint};
use crate::search::batch::BatchTechnique;
use crate::search::SearchTechnique;
use crate::space::{Configuration, DesignSpace};
use rand::RngCore;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Result of a design-space exploration run.
#[derive(Debug, Clone)]
pub struct DseReport {
    /// Every evaluated operating point.
    pub knowledge: KnowledgeBase,
    /// Evaluations performed.
    pub evaluations: usize,
    /// Best configuration under the DSE objective.
    pub best: Option<Configuration>,
}

impl DseReport {
    /// The Pareto-optimal operating points under the given metrics (all
    /// minimized) — the multi-objective view the runtime manager filters
    /// at deployment time.
    pub fn pareto(&self, metrics: &[&str]) -> Vec<&crate::point::OperatingPoint> {
        self.knowledge.pareto(metrics)
    }
}

/// Explores the design space, measuring all metrics per configuration.
///
/// `eval` returns named metrics; `objective` steers the search (its metric
/// is used as the scalar cost signal for the technique).
///
/// # Examples
///
/// ```
/// use antarex_tuner::dse::explore;
/// use antarex_tuner::goal::Objective;
/// use antarex_tuner::knob::Knob;
/// use antarex_tuner::search::exhaustive::Exhaustive;
/// use antarex_tuner::space::DesignSpace;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let space = DesignSpace::new(vec![Knob::int("n", 1, 4, 1)]);
/// let mut rng = StdRng::seed_from_u64(0);
/// let report = explore(
///     &space,
///     Box::new(Exhaustive::new()),
///     &Objective::minimize("time"),
///     100,
///     &mut rng,
///     |cfg| {
///         let n = cfg.get_int("n").unwrap() as f64;
///         [("time".to_string(), 10.0 / n), ("energy".to_string(), n)].into()
///     },
/// );
/// assert_eq!(report.evaluations, 4);
/// assert_eq!(report.best.unwrap().get_int("n"), Some(4));
/// ```
pub fn explore(
    space: &DesignSpace,
    mut technique: Box<dyn SearchTechnique>,
    objective: &Objective,
    budget: usize,
    rng: &mut dyn RngCore,
    mut eval: impl FnMut(&Configuration) -> BTreeMap<String, f64>,
) -> DseReport {
    let mut knowledge = KnowledgeBase::new();
    let mut best: Option<(Configuration, f64)> = None;
    let mut evaluations = 0;
    let mut proposals = 0;
    let cap = budget.saturating_mul(10).max(budget);
    while evaluations < budget && proposals < cap {
        let Some(config) = technique.propose(space, rng) else {
            break;
        };
        proposals += 1;
        if let Some(point) = knowledge.find(&config) {
            if let Some(value) = point.metric(objective.metric()) {
                technique.feedback(&config, -objective.score(value));
            }
            continue;
        }
        let metrics = eval(&config);
        evaluations += 1;
        let value = metrics.get(objective.metric()).copied();
        knowledge.push(OperatingPoint::new(config.clone(), metrics));
        if let Some(value) = value {
            let score = objective.score(value);
            if best.as_ref().is_none_or(|(_, b)| score > *b) {
                best = Some((config.clone(), score));
            }
            // techniques minimize: negate the score
            technique.feedback(&config, -score);
        }
    }
    DseReport {
        knowledge,
        evaluations,
        best: best.map(|(c, _)| c),
    }
}

/// SplitMix64 finalizer — the per-round seed splitter.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic seed for round `round` of an exploration started
/// with `base_seed`.
fn split_seed(base_seed: u64, round: u64) -> u64 {
    mix64(base_seed ^ mix64(round))
}

/// Evaluates `jobs` across `workers` scoped threads. Work is handed
/// out through an atomic cursor; each result lands in the slot of its
/// job index, so the returned vector is in job order no matter how the
/// threads interleaved.
fn evaluate_jobs<E>(jobs: &[Configuration], workers: usize, eval: &E) -> Vec<BTreeMap<String, f64>>
where
    E: Fn(&Configuration) -> BTreeMap<String, f64> + Sync,
{
    let slots: Vec<Mutex<Option<BTreeMap<String, f64>>>> =
        jobs.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers.min(jobs.len()).max(1) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let metrics = eval(&jobs[i]);
                let mut slot = match slots[i].lock() {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
                *slot = Some(metrics);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            match slot.into_inner() {
                Ok(inner) => inner,
                Err(poisoned) => poisoned.into_inner(),
            }
            .expect("every job slot is filled before the scope ends")
        })
        .collect()
}

/// Explores the design space with a [`BatchTechnique`], evaluating each
/// round of proposals across `workers` threads.
///
/// The report is **byte-identical at any worker count**: proposals are
/// a pure function of `(base_seed, round index)` via deterministic seed
/// splitting, duplicate configurations are resolved against the
/// knowledge base before any thread starts, and results are merged —
/// knowledge-base insertion, incumbent updates, technique feedback — in
/// proposal order. Worker threads only ever run `eval`, which must
/// therefore be a pure function of the configuration.
///
/// # Examples
///
/// ```
/// use antarex_tuner::dse::explore_parallel;
/// use antarex_tuner::goal::Objective;
/// use antarex_tuner::knob::Knob;
/// use antarex_tuner::search::batch::ExhaustiveBatch;
/// use antarex_tuner::space::DesignSpace;
///
/// let space = DesignSpace::new(vec![Knob::int("n", 1, 4, 1)]);
/// let report = explore_parallel(
///     &space,
///     Box::new(ExhaustiveBatch::new()),
///     &Objective::minimize("time"),
///     100,
///     0,
///     4,
///     |cfg| {
///         let n = cfg.get_int("n").unwrap() as f64;
///         [("time".to_string(), 10.0 / n)].into()
///     },
/// );
/// assert_eq!(report.evaluations, 4);
/// assert_eq!(report.best.unwrap().get_int("n"), Some(4));
/// ```
pub fn explore_parallel<E>(
    space: &DesignSpace,
    mut technique: Box<dyn BatchTechnique>,
    objective: &Objective,
    budget: usize,
    base_seed: u64,
    workers: usize,
    eval: E,
) -> DseReport
where
    E: Fn(&Configuration) -> BTreeMap<String, f64> + Sync,
{
    let mut knowledge = KnowledgeBase::new();
    let mut best: Option<(Configuration, f64)> = None;
    let mut evaluations = 0;
    let mut proposals = 0;
    let cap = budget.saturating_mul(10).max(budget);
    let mut round: u64 = 0;
    while evaluations < budget && proposals < cap {
        let remaining = budget - evaluations;
        let batch = technique.propose_batch(space, split_seed(base_seed, round), remaining);
        round += 1;
        if batch.is_empty() {
            break;
        }
        proposals += batch.len();
        // resolve each proposal to cached metrics or a fresh job;
        // within-batch duplicates ride on the first occurrence
        enum Source {
            Known(usize),
            Job(usize),
        }
        let mut jobs: Vec<Configuration> = Vec::new();
        let mut sources: Vec<Source> = Vec::with_capacity(batch.len());
        for config in &batch {
            if let Some(index) = knowledge.find_index(config) {
                sources.push(Source::Known(index));
            } else if let Some(job) = jobs.iter().position(|j| j == config) {
                sources.push(Source::Job(job));
            } else {
                jobs.push(config.clone());
                sources.push(Source::Job(jobs.len() - 1));
            }
        }
        let results = evaluate_jobs(&jobs, workers, &eval);
        evaluations += jobs.len();
        // merge in proposal order: push fresh points, update the
        // incumbent, collect feedback — exactly as the sequential
        // explorer would have seen them
        let mut fresh = vec![true; jobs.len()];
        let mut feedback: Vec<(Configuration, f64)> = Vec::with_capacity(batch.len());
        for (config, source) in batch.iter().zip(&sources) {
            let value = match source {
                Source::Known(index) => knowledge.points()[*index].metric(objective.metric()),
                Source::Job(job) => {
                    if std::mem::take(&mut fresh[*job]) {
                        knowledge.push(OperatingPoint::new(config.clone(), results[*job].clone()));
                    }
                    results[*job].get(objective.metric()).copied()
                }
            };
            let Some(value) = value else { continue };
            let score = objective.score(value);
            if matches!(source, Source::Job(_)) && best.as_ref().is_none_or(|(_, b)| score > *b) {
                best = Some((config.clone(), score));
            }
            // techniques minimize: negate the score
            feedback.push((config.clone(), -score));
        }
        technique.feedback_batch(&feedback);
    }
    DseReport {
        knowledge,
        evaluations,
        best: best.map(|(c, _)| c),
    }
}

/// The virtual wall-clock of running evaluations whose costs are
/// `costs` (in proposal order) on `workers` machines under greedy list
/// scheduling: each job goes to the earliest-available worker. This is
/// the same virtual-time determinism the serving layer's evaluation
/// pool uses — speedup numbers derived from it are exact and identical
/// on any host, including a single-core CI runner.
///
/// # Panics
///
/// Panics if `workers` is zero.
pub fn virtual_makespan(costs: &[f64], workers: usize) -> f64 {
    assert!(workers > 0, "makespan needs at least one worker");
    let mut free_at = vec![0.0f64; workers];
    for cost in costs {
        let worker = free_at
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1).then(a.0.cmp(&b.0)))
            .map(|(i, _)| i)
            .expect("workers > 0");
        free_at[worker] += cost.max(0.0);
    }
    free_at.iter().copied().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knob::Knob;
    use crate::search::batch::{ExhaustiveBatch, GeneticBatch, RandomBatch};
    use crate::search::exhaustive::Exhaustive;
    use crate::search::random::RandomSearch;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> DesignSpace {
        DesignSpace::new(vec![Knob::int("unroll", 1, 8, 1)])
    }

    fn metrics(cfg: &Configuration) -> BTreeMap<String, f64> {
        let u = cfg.get_int("unroll").unwrap() as f64;
        [
            ("time".to_string(), 16.0 / u),
            ("energy".to_string(), u * u),
        ]
        .into()
    }

    #[test]
    fn exhaustive_dse_builds_full_knowledge_base() {
        let mut rng = StdRng::seed_from_u64(0);
        let report = explore(
            &space(),
            Box::new(Exhaustive::new()),
            &Objective::minimize("time"),
            100,
            &mut rng,
            metrics,
        );
        assert_eq!(report.knowledge.len(), 8);
        assert_eq!(report.best.unwrap().get_int("unroll"), Some(8));
        // both metrics recorded
        let p = &report.knowledge.points()[0];
        assert!(p.metric("time").is_some() && p.metric("energy").is_some());
    }

    #[test]
    fn maximize_objective_flips_best() {
        let mut rng = StdRng::seed_from_u64(0);
        let report = explore(
            &space(),
            Box::new(Exhaustive::new()),
            &Objective::maximize("time"),
            100,
            &mut rng,
            metrics,
        );
        assert_eq!(report.best.unwrap().get_int("unroll"), Some(1));
    }

    #[test]
    fn budget_limits_evaluations() {
        let mut rng = StdRng::seed_from_u64(1);
        let report = explore(
            &space(),
            Box::new(RandomSearch::new()),
            &Objective::minimize("time"),
            3,
            &mut rng,
            metrics,
        );
        assert_eq!(report.evaluations, 3);
        assert_eq!(report.knowledge.len(), 3);
    }

    #[test]
    fn pareto_view_of_the_exploration() {
        let mut rng = StdRng::seed_from_u64(0);
        let report = explore(
            &space(),
            Box::new(Exhaustive::new()),
            &Objective::minimize("time"),
            100,
            &mut rng,
            metrics,
        );
        let front = report.pareto(&["time", "energy"]);
        // time = 16/u (decreasing), energy = u^2 (increasing): every
        // point is non-dominated
        assert_eq!(front.len(), 8);
    }

    #[test]
    fn parallel_report_is_identical_at_any_worker_count() {
        for technique in ["exhaustive", "random", "genetic"] {
            let make: fn() -> Box<dyn crate::search::batch::BatchTechnique> = match technique {
                "exhaustive" => || Box::new(ExhaustiveBatch::new()),
                "random" => || Box::new(RandomBatch::new(8)),
                _ => || Box::new(GeneticBatch::with_params(8, 0.2)),
            };
            let reports: Vec<DseReport> = [1, 2, 4, 7]
                .iter()
                .map(|&workers| {
                    explore_parallel(
                        &space(),
                        make(),
                        &Objective::minimize("time"),
                        30,
                        99,
                        workers,
                        metrics,
                    )
                })
                .collect();
            for report in &reports[1..] {
                assert_eq!(
                    format!("{:?}", report.knowledge),
                    format!("{:?}", reports[0].knowledge),
                    "{technique}: knowledge must not depend on worker count"
                );
                assert_eq!(report.evaluations, reports[0].evaluations, "{technique}");
                assert_eq!(report.best, reports[0].best, "{technique}");
            }
        }
    }

    #[test]
    fn parallel_exhaustive_matches_sequential_explore() {
        let mut rng = StdRng::seed_from_u64(0);
        let sequential = explore(
            &space(),
            Box::new(Exhaustive::new()),
            &Objective::minimize("time"),
            100,
            &mut rng,
            metrics,
        );
        let parallel = explore_parallel(
            &space(),
            Box::new(ExhaustiveBatch::new()),
            &Objective::minimize("time"),
            100,
            0,
            4,
            metrics,
        );
        assert_eq!(
            format!("{:?}", parallel.knowledge),
            format!("{:?}", sequential.knowledge)
        );
        assert_eq!(parallel.evaluations, sequential.evaluations);
        assert_eq!(parallel.best, sequential.best);
    }

    #[test]
    fn parallel_budget_is_respected() {
        let report = explore_parallel(
            &space(),
            Box::new(RandomBatch::new(8)),
            &Objective::minimize("time"),
            5,
            3,
            4,
            metrics,
        );
        assert!(report.evaluations <= 5);
        assert_eq!(report.knowledge.len(), report.evaluations);
    }

    #[test]
    fn parallel_genetic_converges() {
        let space = DesignSpace::new(vec![
            Knob::int("unroll", 1, 32, 1),
            Knob::int("block", 1, 32, 1),
        ]);
        let report = explore_parallel(
            &space,
            Box::new(GeneticBatch::with_params(16, 0.15)),
            &Objective::minimize("time"),
            400,
            11,
            4,
            |cfg| {
                let u = cfg.get_int("unroll").unwrap() as f64;
                let b = cfg.get_int("block").unwrap() as f64;
                [("time".to_string(), (u - 20.0).powi(2) + (b - 9.0).powi(2))].into()
            },
        );
        let best = report.best.expect("found something");
        let u = best.get_int("unroll").unwrap();
        let b = best.get_int("block").unwrap();
        assert!(
            (u - 20).abs() <= 3 && (b - 9).abs() <= 3,
            "GA should land near (20, 9), got ({u}, {b})"
        );
    }

    #[test]
    fn makespan_models_list_scheduling() {
        let costs = [4.0, 3.0, 2.0, 1.0];
        assert_eq!(virtual_makespan(&costs, 1), 10.0);
        // worker 0: 4+1, worker 1: 3+2 => makespan 5
        assert_eq!(virtual_makespan(&costs, 2), 5.0);
        assert_eq!(virtual_makespan(&costs, 4), 4.0);
        assert_eq!(virtual_makespan(&[], 3), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn makespan_rejects_zero_workers() {
        let _ = virtual_makespan(&[1.0], 0);
    }

    #[test]
    fn duplicate_proposals_reuse_cache() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut calls = 0;
        let report = explore(
            &space(),
            Box::new(RandomSearch::new()),
            &Objective::minimize("time"),
            50,
            &mut rng,
            |cfg| {
                calls += 1;
                metrics(cfg)
            },
        );
        assert!(calls <= 8, "only 8 distinct configurations exist");
        assert_eq!(report.evaluations, calls);
    }
}
