//! Constant folding and branch pruning.
//!
//! Folding is what makes specialization (paper Fig. 4) profitable: after the
//! weaver substitutes a runtime value for a parameter, folding collapses the
//! now-constant arithmetic and prunes dead branches, and loop trip counts
//! become statically known — unlocking full unrolling.

use antarex_ir::{BinOp, Block, Expr, Stmt, UnOp};

/// Folds constants in an expression, returning a (possibly) simpler one.
///
/// Integer arithmetic folds exactly (wrapping); float arithmetic folds in
/// f64. Division by a constant zero is left unfolded so the runtime error
/// surfaces where the programmer wrote it.
pub fn fold_expr(expr: &Expr) -> Expr {
    match expr {
        Expr::Unary(op, inner) => {
            let inner = fold_expr(inner);
            match (op, &inner) {
                (UnOp::Neg, Expr::Int(v)) => Expr::Int(-v),
                (UnOp::Neg, Expr::Float(v)) => Expr::Float(-v),
                (UnOp::Not, Expr::Int(v)) => Expr::Int(i64::from(*v == 0)),
                _ => Expr::Unary(*op, Box::new(inner)),
            }
        }
        Expr::Binary(op, lhs, rhs) => {
            let lhs = fold_expr(lhs);
            let rhs = fold_expr(rhs);
            fold_binary(*op, lhs, rhs)
        }
        Expr::Call(name, args) => Expr::Call(name.clone(), args.iter().map(fold_expr).collect()),
        Expr::Index(name, idx) => Expr::Index(name.clone(), Box::new(fold_expr(idx))),
        other => other.clone(),
    }
}

fn fold_binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
    use BinOp::*;
    if let (Expr::Int(a), Expr::Int(b)) = (&lhs, &rhs) {
        let (a, b) = (*a, *b);
        let folded = match op {
            Add => Some(a.wrapping_add(b)),
            Sub => Some(a.wrapping_sub(b)),
            Mul => Some(a.wrapping_mul(b)),
            Div if b != 0 => Some(a.wrapping_div(b)),
            Rem if b != 0 => Some(a.wrapping_rem(b)),
            Eq => Some(i64::from(a == b)),
            Ne => Some(i64::from(a != b)),
            Lt => Some(i64::from(a < b)),
            Le => Some(i64::from(a <= b)),
            Gt => Some(i64::from(a > b)),
            Ge => Some(i64::from(a >= b)),
            And => Some(i64::from(a != 0 && b != 0)),
            Or => Some(i64::from(a != 0 || b != 0)),
            _ => None,
        };
        if let Some(v) = folded {
            return Expr::Int(v);
        }
    }
    let as_f64 = |e: &Expr| match e {
        Expr::Float(v) => Some(*v),
        Expr::Int(v) => Some(*v as f64),
        _ => None,
    };
    if matches!(lhs, Expr::Float(_)) || matches!(rhs, Expr::Float(_)) {
        if let (Some(a), Some(b)) = (as_f64(&lhs), as_f64(&rhs)) {
            let folded = match op {
                Add => Some(Expr::Float(a + b)),
                Sub => Some(Expr::Float(a - b)),
                Mul => Some(Expr::Float(a * b)),
                Div if b != 0.0 => Some(Expr::Float(a / b)),
                Eq => Some(Expr::Int(i64::from(a == b))),
                Ne => Some(Expr::Int(i64::from(a != b))),
                Lt => Some(Expr::Int(i64::from(a < b))),
                Le => Some(Expr::Int(i64::from(a <= b))),
                Gt => Some(Expr::Int(i64::from(a > b))),
                Ge => Some(Expr::Int(i64::from(a >= b))),
                _ => None,
            };
            if let Some(e) = folded {
                return e;
            }
        }
    }
    // algebraic identities with a constant on one side
    match (op, &lhs, &rhs) {
        (Add, e, Expr::Int(0)) | (Add, Expr::Int(0), e) | (Sub, e, Expr::Int(0)) => e.clone(),
        (Mul, e, Expr::Int(1)) | (Mul, Expr::Int(1), e) | (Div, e, Expr::Int(1)) => e.clone(),
        (Mul, _, Expr::Int(0)) | (Mul, Expr::Int(0), _) => Expr::Int(0),
        (Add, e, Expr::Float(z)) | (Add, Expr::Float(z), e) | (Sub, e, Expr::Float(z))
            if *z == 0.0 =>
        {
            e.clone()
        }
        (Mul, e, Expr::Float(one)) | (Mul, Expr::Float(one), e) | (Div, e, Expr::Float(one))
            if *one == 1.0 =>
        {
            e.clone()
        }
        _ => Expr::binary(op, lhs, rhs),
    }
}

/// Folds constants throughout a block: expressions are folded and `if`
/// statements with constant conditions are replaced by the taken branch.
pub fn fold_block(block: &Block) -> Block {
    let mut out = Vec::with_capacity(block.len());
    for stmt in block {
        match fold_stmt(stmt) {
            Folded::Stmt(s) => out.push(s),
            Folded::Splice(mut stmts) => out.append(&mut stmts),
            Folded::Removed => {}
        }
    }
    out
}

enum Folded {
    Stmt(Stmt),
    Splice(Vec<Stmt>),
    Removed,
}

fn fold_stmt(stmt: &Stmt) -> Folded {
    match stmt {
        Stmt::Decl { name, ty, init } => Folded::Stmt(Stmt::Decl {
            name: name.clone(),
            ty: *ty,
            init: init.as_ref().map(fold_expr),
        }),
        Stmt::ArrayDecl { .. } => Folded::Stmt(stmt.clone()),
        Stmt::Assign { target, value } => Folded::Stmt(Stmt::Assign {
            target: target.clone(),
            value: fold_expr(value),
        }),
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let cond = fold_expr(cond);
            match cond.as_const_int() {
                Some(0) => match else_branch {
                    Some(else_branch) => Folded::Splice(fold_block(else_branch)),
                    None => Folded::Removed,
                },
                Some(_) => Folded::Splice(fold_block(then_branch)),
                None => Folded::Stmt(Stmt::If {
                    cond,
                    then_branch: fold_block(then_branch),
                    else_branch: else_branch.as_ref().map(fold_block),
                }),
            }
        }
        Stmt::For {
            var,
            init,
            cond,
            step,
            body,
        } => Folded::Stmt(Stmt::For {
            var: var.clone(),
            init: fold_expr(init),
            cond: fold_expr(cond),
            step: fold_expr(step),
            body: fold_block(body),
        }),
        Stmt::While { cond, body } => {
            let cond = fold_expr(cond);
            if cond.as_const_int() == Some(0) {
                Folded::Removed
            } else {
                Folded::Stmt(Stmt::While {
                    cond,
                    body: fold_block(body),
                })
            }
        }
        Stmt::Return(e) => Folded::Stmt(Stmt::Return(e.as_ref().map(fold_expr))),
        Stmt::ExprStmt(e) => Folded::Stmt(Stmt::ExprStmt(fold_expr(e))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antarex_ir::parse_expr;

    fn fold(src: &str) -> Expr {
        fold_expr(&parse_expr(src).unwrap())
    }

    #[test]
    fn integer_arithmetic_folds() {
        assert_eq!(fold("2 + 3 * 4"), Expr::Int(14));
        assert_eq!(fold("(10 - 4) / 3"), Expr::Int(2));
        assert_eq!(fold("7 % 4"), Expr::Int(3));
        assert_eq!(fold("-(2 + 3)"), Expr::Int(-5));
        assert_eq!(fold("!0"), Expr::Int(1));
    }

    #[test]
    fn comparisons_fold() {
        assert_eq!(fold("3 < 4"), Expr::Int(1));
        assert_eq!(fold("3.5 >= 4.0"), Expr::Int(0));
        assert_eq!(fold("1 && 0"), Expr::Int(0));
        assert_eq!(fold("1 || 0"), Expr::Int(1));
    }

    #[test]
    fn float_arithmetic_folds() {
        assert_eq!(fold("1.5 * 2.0"), Expr::Float(3.0));
        assert_eq!(fold("1 + 0.5"), Expr::Float(1.5));
    }

    #[test]
    fn division_by_zero_not_folded() {
        assert!(matches!(fold("1 / 0"), Expr::Binary(BinOp::Div, _, _)));
        assert!(matches!(fold("1.0 / 0.0"), Expr::Binary(BinOp::Div, _, _)));
    }

    #[test]
    fn identities_simplify_symbolic_operands() {
        assert_eq!(fold("x + 0"), Expr::var("x"));
        assert_eq!(fold("0 + x"), Expr::var("x"));
        assert_eq!(fold("x * 1"), Expr::var("x"));
        assert_eq!(fold("x * 0"), Expr::Int(0));
        assert_eq!(fold("x - 0"), Expr::var("x"));
        assert_eq!(fold("x / 1"), Expr::var("x"));
    }

    #[test]
    fn nested_partial_folding() {
        // (2 * 3) + x -> 6 + x
        let e = fold("2 * 3 + x");
        assert_eq!(e, Expr::binary(BinOp::Add, Expr::Int(6), Expr::var("x")));
    }

    #[test]
    fn if_with_constant_condition_pruned() {
        let program = antarex_ir::parse_program(
            "int f(int x) { if (1 < 2) { return x; } else { return 0; } }",
        )
        .unwrap();
        let body = fold_block(&program.function("f").unwrap().body);
        assert_eq!(body.len(), 1);
        assert!(matches!(&body[0], Stmt::Return(Some(Expr::Var(v))) if v == "x"));
    }

    #[test]
    fn dead_else_and_dead_while_removed() {
        let program = antarex_ir::parse_program(
            "int f(int x) { if (0) { x = 1; } while (2 > 3) { x = 2; } return x; }",
        )
        .unwrap();
        let body = fold_block(&program.function("f").unwrap().body);
        assert_eq!(body.len(), 1, "only the return remains");
    }

    #[test]
    fn folding_preserves_execution_result() {
        use antarex_ir::interp::{ExecEnv, Interp};
        use antarex_ir::value::Value;
        let src = "int f(int x) {
            int a = 2 * 3 + x;
            if (4 > 2) { a = a + 10 * 0; } else { a = -1; }
            for (int i = 0; i < 2 + 1; i++) { a += i * 1; }
            return a;
        }";
        let program = antarex_ir::parse_program(src).unwrap();
        let mut folded_program = program.clone();
        folded_program
            .edit_function("f", |f| f.body = fold_block(&f.body))
            .unwrap();
        for x in [-3i64, 0, 11] {
            let a = Interp::new(program.clone())
                .call("f", &[Value::Int(x)], &mut ExecEnv::new())
                .unwrap();
            let b = Interp::new(folded_program.clone())
                .call("f", &[Value::Int(x)], &mut ExecEnv::new())
                .unwrap();
            assert_eq!(a, b, "folding changed semantics for x={x}");
        }
    }

    #[test]
    fn folding_reduces_cost() {
        use antarex_ir::interp::{ExecEnv, Interp};
        use antarex_ir::value::Value;
        let src = "int f(int x) { return x + 2 * 3 + 4 * 5; }";
        let program = antarex_ir::parse_program(src).unwrap();
        let mut folded_program = program.clone();
        folded_program
            .edit_function("f", |f| f.body = fold_block(&f.body))
            .unwrap();
        let mut env_a = ExecEnv::new();
        let mut env_b = ExecEnv::new();
        Interp::new(program)
            .call("f", &[Value::Int(1)], &mut env_a)
            .unwrap();
        Interp::new(folded_program)
            .call("f", &[Value::Int(1)], &mut env_b)
            .unwrap();
        assert!(env_b.stats.cost < env_a.stats.cost);
    }
}
