//! Function inlining (`do Inline('callee')`).
//!
//! Inlines calls to *expression functions* — functions whose body is a
//! single `return <expr>` over their scalar parameters. That covers the
//! small helpers instrumentation and specialization tend to leave behind,
//! and removes the call overhead the cost model charges per invocation.
//!
//! Safety rule: a call is only inlined when no argument contains a nested
//! call — every other expression form is side-effect-free in this IR, so
//! duplicating it into multiple parameter uses is semantics-preserving
//! (at worst it re-evaluates a pure read).

use antarex_ir::{Block, Expr, Function, LValue, Program, Stmt};
use std::fmt;

/// Why a function cannot be inlined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InlineError {
    /// No such function.
    UnknownFunction(String),
    /// The body is not a single `return <expr>`.
    NotAnExpressionFunction(String),
    /// The function takes array parameters (aliasing is not tracked).
    ArrayParams(String),
}

impl fmt::Display for InlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InlineError::UnknownFunction(name) => write!(f, "unknown function `{name}`"),
            InlineError::NotAnExpressionFunction(name) => {
                write!(f, "`{name}` is not a single-return expression function")
            }
            InlineError::ArrayParams(name) => {
                write!(f, "`{name}` takes array parameters")
            }
        }
    }
}

impl std::error::Error for InlineError {}

/// Checks that `function` is inlinable and returns its return expression.
fn inlinable_body(function: &Function) -> Option<&Expr> {
    if function.params.iter().any(|p| p.is_array) {
        return None;
    }
    match function.body.as_slice() {
        [Stmt::Return(Some(expr))] => Some(expr),
        _ => None,
    }
}

/// Returns `true` if the argument expression is safe to duplicate:
/// everything except calls is side-effect-free in this IR, so only
/// arguments containing a call are rejected.
fn duplicable(arg: &Expr) -> bool {
    let mut has_call = false;
    arg.walk(&mut |e| has_call |= matches!(e, Expr::Call(_, _)));
    !has_call
}

fn inline_expr(
    expr: &Expr,
    callee: &str,
    ret: &Expr,
    params: &[String],
    count: &mut usize,
) -> Expr {
    match expr {
        Expr::Call(name, args) => {
            let args: Vec<Expr> = args
                .iter()
                .map(|a| inline_expr(a, callee, ret, params, count))
                .collect();
            if name == callee && args.len() == params.len() && args.iter().all(duplicable) {
                let mut body = ret.clone();
                for (param, arg) in params.iter().zip(&args) {
                    body = body.substitute(param, arg);
                }
                *count += 1;
                body
            } else {
                Expr::Call(name.clone(), args)
            }
        }
        Expr::Unary(op, inner) => Expr::Unary(
            *op,
            Box::new(inline_expr(inner, callee, ret, params, count)),
        ),
        Expr::Binary(op, lhs, rhs) => Expr::binary(
            *op,
            inline_expr(lhs, callee, ret, params, count),
            inline_expr(rhs, callee, ret, params, count),
        ),
        Expr::Index(name, idx) => Expr::Index(
            name.clone(),
            Box::new(inline_expr(idx, callee, ret, params, count)),
        ),
        other => other.clone(),
    }
}

fn inline_block(block: &mut Block, callee: &str, ret: &Expr, params: &[String], count: &mut usize) {
    for stmt in block.iter_mut() {
        match stmt {
            Stmt::Decl { init: Some(e), .. } => *e = inline_expr(e, callee, ret, params, count),
            Stmt::Decl { .. } | Stmt::ArrayDecl { .. } => {}
            Stmt::Assign { target, value } => {
                if let LValue::Index(_, idx) = target {
                    **idx = inline_expr(idx, callee, ret, params, count);
                }
                *value = inline_expr(value, callee, ret, params, count);
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                *cond = inline_expr(cond, callee, ret, params, count);
                inline_block(then_branch, callee, ret, params, count);
                if let Some(else_branch) = else_branch {
                    inline_block(else_branch, callee, ret, params, count);
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                *init = inline_expr(init, callee, ret, params, count);
                *cond = inline_expr(cond, callee, ret, params, count);
                *step = inline_expr(step, callee, ret, params, count);
                inline_block(body, callee, ret, params, count);
            }
            Stmt::While { cond, body } => {
                *cond = inline_expr(cond, callee, ret, params, count);
                inline_block(body, callee, ret, params, count);
            }
            Stmt::Return(Some(e)) => *e = inline_expr(e, callee, ret, params, count),
            Stmt::Return(None) => {}
            Stmt::ExprStmt(e) => *e = inline_expr(e, callee, ret, params, count),
        }
    }
}

/// Inlines every eligible call to `callee` inside `body`, returning how
/// many call sites were expanded. Calls whose arguments contain nested
/// calls are left intact.
///
/// # Errors
///
/// See [`InlineError`] — the *callee* must be an inlinable expression
/// function; ineligible *call sites* are skipped silently.
pub fn inline_calls(
    body: &mut Block,
    program: &Program,
    callee: &str,
) -> Result<usize, InlineError> {
    let function = program
        .function(callee)
        .ok_or_else(|| InlineError::UnknownFunction(callee.to_string()))?;
    if function.params.iter().any(|p| p.is_array) {
        return Err(InlineError::ArrayParams(callee.to_string()));
    }
    let ret = inlinable_body(function)
        .ok_or_else(|| InlineError::NotAnExpressionFunction(callee.to_string()))?
        .clone();
    let params: Vec<String> = function.params.iter().map(|p| p.name.clone()).collect();
    let mut count = 0;
    inline_block(body, callee, &ret, &params, &mut count);
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use antarex_ir::interp::{ExecEnv, Interp};
    use antarex_ir::parse_program;
    use antarex_ir::value::Value;

    const SRC: &str = "double sq(double x) { return x * x; }
    double mix(double a, double b) { return a * 2.0 + b; }
    double f(double u, double v) {
        double acc = sq(u) + sq(v);
        for (int i = 0; i < 4; i++) { acc += mix(u, acc); }
        if (sq(u) > 1.0) { acc += 1.0; }
        return acc;
    }";

    fn run(program: &Program) -> Value {
        Interp::new(program.clone())
            .call(
                "f",
                &[Value::Float(1.5), Value::Float(0.25)],
                &mut ExecEnv::new(),
            )
            .unwrap()
    }

    #[test]
    fn inlining_preserves_semantics_and_cuts_calls() {
        let program = parse_program(SRC).unwrap();
        let reference = run(&program);
        let mut inlined = program.clone();
        let mut total = 0;
        inlined
            .edit_function("f", |f| {
                total += inline_calls(&mut f.body, &program, "sq").unwrap();
                total += inline_calls(&mut f.body, &program, "mix").unwrap();
            })
            .unwrap();
        assert!(total >= 3, "inlined {total} call sites");
        assert_eq!(run(&inlined), reference);

        let mut env_base = ExecEnv::new();
        Interp::new(program.clone())
            .call("f", &[Value::Float(1.5), Value::Float(0.25)], &mut env_base)
            .unwrap();
        let mut env_inl = ExecEnv::new();
        Interp::new(inlined)
            .call("f", &[Value::Float(1.5), Value::Float(0.25)], &mut env_inl)
            .unwrap();
        assert!(env_inl.stats.calls < env_base.stats.calls);
        assert!(env_inl.stats.cost < env_base.stats.cost);
    }

    #[test]
    fn non_duplicable_arguments_are_skipped() {
        // sq(g()) must not be inlined (duplicating g() would double its
        // side effects if x were used twice)
        let program = parse_program(
            "double sq(double x) { return x * x; }
             double g() { return 2.0; }
             double f() { return sq(g()); }",
        )
        .unwrap();
        let mut edited = program.clone();
        let mut count = 0;
        edited
            .edit_function("f", |f| {
                count = inline_calls(&mut f.body, &program, "sq").unwrap();
            })
            .unwrap();
        assert_eq!(count, 0);
        assert_eq!(run_simple(&edited), Value::Float(4.0));
    }

    fn run_simple(program: &Program) -> Value {
        Interp::new(program.clone())
            .call("f", &[], &mut ExecEnv::new())
            .unwrap()
    }

    #[test]
    fn ineligible_callees_error() {
        let program = parse_program(
            "double multi(double x) { double y = x; return y; }
             double arr(double a[]) { return a[0]; }
             double f() { return 1.0; }",
        )
        .unwrap();
        let mut body = program.function("f").unwrap().body.clone();
        assert!(matches!(
            inline_calls(&mut body, &program, "multi"),
            Err(InlineError::NotAnExpressionFunction(_))
        ));
        assert!(matches!(
            inline_calls(&mut body, &program, "arr"),
            Err(InlineError::ArrayParams(_))
        ));
        assert!(matches!(
            inline_calls(&mut body, &program, "ghost"),
            Err(InlineError::UnknownFunction(_))
        ));
    }

    #[test]
    fn nested_calls_to_same_callee_inline_bottom_up() {
        let program = parse_program(
            "int inc(int x) { return x + 1; }
             int f() { return inc(inc(inc(0))); }",
        )
        .unwrap();
        let mut edited = program.clone();
        let mut count = 0;
        edited
            .edit_function("f", |f| {
                count = inline_calls(&mut f.body, &program, "inc").unwrap();
            })
            .unwrap();
        // innermost inc(0) inlines to (0+1); the next level's argument is
        // then a binary expression (not duplicable) — one site per pass
        assert!(count >= 1);
        assert_eq!(run_simple(&edited), Value::Int(3));
    }
}
