//! Dead-store elimination.
//!
//! Specialization and folding leave corpses: declarations whose variable
//! is never read again, assignments overwritten before use. This pass
//! removes them conservatively — only scalar declarations/assignments
//! whose target is never *read* anywhere after the statement, and whose
//! right-hand side contains no calls (calls may have effects). Loop
//! variables, array declarations and control flow are left alone.

use antarex_ir::{Block, Expr, LValue, NodePath, Stmt};
use std::collections::BTreeSet;

/// Names read anywhere in the statements `from..` of a pre-order listing.
fn reads_after(listing: &[(NodePath, &Stmt)], from: usize) -> BTreeSet<String> {
    let mut reads = BTreeSet::new();
    for (_, stmt) in &listing[from..] {
        stmt.own_exprs(&mut |expr| {
            expr.walk(&mut |e| match e {
                Expr::Var(name) => {
                    reads.insert(name.clone());
                }
                Expr::Index(name, _) => {
                    reads.insert(name.clone());
                }
                _ => {}
            });
        });
        // array-element stores read the array implicitly (the rest of the
        // array survives), and their index expression reads too
        if let Stmt::Assign {
            target: LValue::Index(name, _),
            ..
        } = stmt
        {
            reads.insert(name.clone());
        }
    }
    reads
}

fn has_call(expr: &Expr) -> bool {
    let mut found = false;
    expr.walk(&mut |e| found |= matches!(e, Expr::Call(_, _)));
    found
}

/// Removes dead scalar declarations and assignments from a body.
/// Returns the number of statements removed. Run to a fixed point by the
/// caller if cascading removal is wanted ([`eliminate_dead_stores`] does
/// one pass; [`dce_fixpoint`] iterates).
pub fn eliminate_dead_stores(body: &mut Block) -> usize {
    // collect candidate paths first (immutable walk), then delete in
    // reverse pre-order so paths stay valid
    let listing = NodePath::enumerate(body);
    let mut victims: Vec<NodePath> = Vec::new();
    for (i, (path, stmt)) in listing.iter().enumerate() {
        // a statement inside a loop may feed a *later iteration*: only
        // top-of-function straight-line statements are candidates
        if path.depth() != 1 {
            continue;
        }
        let dead = match stmt {
            Stmt::Decl { name, init, .. } => {
                let pure = init.as_ref().is_none_or(|e| !has_call(e));
                pure && !reads_after(&listing, i + 1).contains(name)
            }
            Stmt::Assign {
                target: LValue::Var(name),
                value,
            } => !has_call(value) && !reads_after(&listing, i + 1).contains(name),
            _ => false,
        };
        if dead {
            victims.push(path.clone());
        }
    }
    let removed = victims.len();
    for path in victims.into_iter().rev() {
        if let Ok((block, index)) = path.resolve_block_mut(body) {
            if index < block.len() {
                block.remove(index);
            }
        }
    }
    removed
}

/// Runs [`eliminate_dead_stores`] to a fixed point (removing a store can
/// kill the stores feeding it). Returns total statements removed.
pub fn dce_fixpoint(body: &mut Block) -> usize {
    let mut total = 0;
    loop {
        let removed = eliminate_dead_stores(body);
        total += removed;
        if removed == 0 {
            return total;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antarex_ir::interp::{ExecEnv, Interp};
    use antarex_ir::parse_program;
    use antarex_ir::value::Value;

    fn body_of(src: &str) -> Block {
        parse_program(src)
            .unwrap()
            .function("f")
            .unwrap()
            .body
            .clone()
    }

    #[test]
    fn dead_decl_and_assignment_removed() {
        let mut body = body_of(
            "int f(int x) {
                 int dead = x * 2;
                 int alive = x + 1;
                 dead = dead + 5;
                 return alive;
             }",
        );
        let removed = dce_fixpoint(&mut body);
        assert_eq!(removed, 2, "decl of `dead` and its reassignment");
        assert_eq!(body.len(), 2);
    }

    #[test]
    fn cascading_removal_reaches_fixpoint() {
        let mut body = body_of(
            "int f(int x) {
                 int a = x;
                 int b = a * 2;
                 int c = b * 2;
                 return x;
             }",
        );
        // one pass removes c; fixpoint removes the whole chain
        let removed = dce_fixpoint(&mut body);
        assert_eq!(removed, 3);
        assert_eq!(body.len(), 1);
    }

    #[test]
    fn side_effecting_initializers_survive() {
        let mut body = body_of("int f() { int unused = g(); return 1; }");
        assert_eq!(dce_fixpoint(&mut body), 0, "the call may have effects");
    }

    #[test]
    fn loop_carried_values_survive() {
        let src = "int f(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) { s = s + i; }
            return s;
        }";
        let mut body = body_of(src);
        assert_eq!(dce_fixpoint(&mut body), 0);
        // and semantics are intact after (no-op) DCE
        let program = parse_program(src).unwrap();
        let out = Interp::new(program)
            .call("f", &[Value::Int(5)], &mut ExecEnv::new())
            .unwrap();
        assert_eq!(out, Value::Int(10));
    }

    #[test]
    fn array_stores_survive() {
        let mut body = body_of(
            "double f(double out[]) {
                 double t = 2.0;
                 out[0] = t;
                 return 0.0;
             }",
        );
        assert_eq!(dce_fixpoint(&mut body), 0, "t feeds a visible store");
    }

    #[test]
    fn dce_after_specialization_shrinks_code() {
        use crate::transform::fold::fold_block;
        use crate::transform::subst::substitute_block;
        let program = parse_program(
            "double f(double a[], int size) {
                 double scale = 1.0 / size;
                 double bias = size * 0.5;
                 double s = 0.0;
                 for (int i = 0; i < 4; i++) { s += a[i]; }
                 return s;
             }",
        )
        .unwrap();
        // specialize on size, fold: scale/bias become dead constants
        let f = program.function("f").unwrap();
        let mut body = fold_block(&substitute_block(
            &f.body,
            "size",
            &antarex_ir::Expr::Int(4),
        ));
        let removed = dce_fixpoint(&mut body);
        assert_eq!(removed, 2, "scale and bias eliminated");
    }

    #[test]
    fn semantics_preserved_on_mixed_bodies() {
        let src = "int f(int x, int y) {
            int junk = x * y;
            int keep = x - y;
            junk = junk * 2;
            int out = keep + 3;
            return out;
        }";
        let program = parse_program(src).unwrap();
        let mut cleaned = program.clone();
        cleaned
            .edit_function("f", |f| {
                dce_fixpoint(&mut f.body);
            })
            .unwrap();
        for (x, y) in [(1, 2), (-3, 7), (0, 0)] {
            let a = Interp::new(program.clone())
                .call("f", &[Value::Int(x), Value::Int(y)], &mut ExecEnv::new())
                .unwrap();
            let b = Interp::new(cleaned.clone())
                .call("f", &[Value::Int(x), Value::Int(y)], &mut ExecEnv::new())
                .unwrap();
            assert_eq!(a, b);
        }
    }
}
