//! Loop unrolling (`do LoopUnroll('full')`, paper Fig. 3).
//!
//! Full unrolling replaces a counted loop whose trip count is statically
//! known by one body copy per iteration, with the induction variable
//! substituted by its constant value and the copies constant-folded. The
//! observable effect under the interpreter's cost model is the removal of
//! per-iteration loop-control overhead — the speedup the paper's
//! `UnrollInnermostLoops` aspect targets.

use super::fold::fold_block;
use super::subst::substitute_block;
use antarex_ir::{analysis, Block, Expr, IrError, LValue, NodePath, Stmt};
use std::fmt;

/// Why a loop could not be unrolled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnrollError {
    /// The path does not address a `for` loop.
    NotAForLoop,
    /// The loop's trip count is not a compile-time constant.
    UnknownTripCount,
    /// The loop body writes the induction variable, so substitution would
    /// change semantics.
    InductionVarWritten(String),
    /// The requested unroll factor is zero.
    ZeroFactor,
    /// The path is invalid for this body.
    BadPath(IrError),
}

impl fmt::Display for UnrollError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnrollError::NotAForLoop => write!(f, "statement is not a `for` loop"),
            UnrollError::UnknownTripCount => write!(f, "loop trip count is not statically known"),
            UnrollError::InductionVarWritten(var) => {
                write!(f, "loop body writes induction variable `{var}`")
            }
            UnrollError::ZeroFactor => write!(f, "unroll factor must be at least 1"),
            UnrollError::BadPath(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for UnrollError {}

impl From<IrError> for UnrollError {
    fn from(err: IrError) -> Self {
        UnrollError::BadPath(err)
    }
}

/// Fully unrolls the `for` loop addressed by `path` inside `body`.
///
/// # Errors
///
/// See [`UnrollError`]; in particular the trip count must be a compile-time
/// constant (`$loop.numIter` in LARA terms).
pub fn unroll_full(body: &mut Block, path: &NodePath) -> Result<(), UnrollError> {
    let stmt = path.resolve(body)?.clone();
    let plan = UnrollPlan::of(&stmt)?;
    let mut copies = Vec::new();
    for iter in 0..plan.count {
        let value = plan.value_at(iter);
        let copy = substitute_block(&plan.body, &plan.var, &Expr::Int(value));
        copies.extend(fold_block(&copy));
    }
    splice(body, path, copies)
}

/// Unrolls the loop by `factor`, keeping a residual loop structure: the main
/// loop executes `factor` body copies per iteration and a fully-unrolled
/// epilogue covers the remainder.
///
/// # Errors
///
/// See [`UnrollError`]. Like [`unroll_full`], the trip count must be known.
pub fn unroll_by_factor(body: &mut Block, path: &NodePath, factor: u64) -> Result<(), UnrollError> {
    if factor == 0 {
        return Err(UnrollError::ZeroFactor);
    }
    let stmt = path.resolve(body)?.clone();
    let plan = UnrollPlan::of(&stmt)?;
    if factor >= plan.count {
        return unroll_full(body, path);
    }
    let main_iters = plan.count - plan.count % factor;
    let mut main_body = Vec::new();
    for j in 0..factor {
        let offset = (j as i64) * plan.stride;
        let var_expr = if offset == 0 {
            Expr::var(&plan.var)
        } else {
            Expr::binary(
                antarex_ir::BinOp::Add,
                Expr::var(&plan.var),
                Expr::Int(offset),
            )
        };
        main_body.extend(fold_block(&substitute_block(
            &plan.body, &plan.var, &var_expr,
        )));
    }
    let bound = plan.start + (main_iters as i64) * plan.stride;
    let main_loop = Stmt::For {
        var: plan.var.clone(),
        init: Expr::Int(plan.start),
        // `!=` terminates exactly because (bound - start) is a multiple of
        // the widened stride.
        cond: Expr::binary(
            antarex_ir::BinOp::Ne,
            Expr::var(&plan.var),
            Expr::Int(bound),
        ),
        step: Expr::binary(
            antarex_ir::BinOp::Add,
            Expr::var(&plan.var),
            Expr::Int(plan.stride * factor as i64),
        ),
        body: main_body,
    };
    let mut stmts = vec![main_loop];
    for iter in main_iters..plan.count {
        let value = plan.value_at(iter);
        stmts.extend(fold_block(&substitute_block(
            &plan.body,
            &plan.var,
            &Expr::Int(value),
        )));
    }
    splice(body, path, stmts)
}

struct UnrollPlan {
    var: String,
    start: i64,
    stride: i64,
    count: u64,
    body: Block,
}

impl UnrollPlan {
    fn of(stmt: &Stmt) -> Result<Self, UnrollError> {
        let Stmt::For {
            var,
            init,
            body,
            step,
            ..
        } = stmt
        else {
            return Err(UnrollError::NotAForLoop);
        };
        let count = analysis::trip_count(stmt).ok_or(UnrollError::UnknownTripCount)?;
        if writes_var(body, var) {
            return Err(UnrollError::InductionVarWritten(var.clone()));
        }
        let start = init.as_const_int().ok_or(UnrollError::UnknownTripCount)?;
        // trip_count already validated the step shape; recover the stride.
        let stride = stride_of(step, var).ok_or(UnrollError::UnknownTripCount)?;
        Ok(UnrollPlan {
            var: var.clone(),
            start,
            stride,
            count,
            body: body.clone(),
        })
    }

    fn value_at(&self, iter: u64) -> i64 {
        self.start + (iter as i64) * self.stride
    }
}

fn stride_of(step: &Expr, var: &str) -> Option<i64> {
    match step {
        Expr::Binary(antarex_ir::BinOp::Add, lhs, rhs) => match (&**lhs, &**rhs) {
            (Expr::Var(v), _) if v == var => rhs.as_const_int(),
            (_, Expr::Var(v)) if v == var => lhs.as_const_int(),
            _ => None,
        },
        Expr::Binary(antarex_ir::BinOp::Sub, lhs, rhs) => match (&**lhs, &**rhs) {
            (Expr::Var(v), _) if v == var => rhs.as_const_int().map(|s| -s),
            _ => None,
        },
        _ => None,
    }
}

fn writes_var(block: &Block, var: &str) -> bool {
    for stmt in block {
        match stmt {
            Stmt::Assign {
                target: LValue::Var(name),
                ..
            } if name == var => return true,
            Stmt::Decl { name, .. } if name == var => return true,
            // a nested for redeclaring the variable shadows it; substitution
            // handles that, so it is not a write of *our* variable
            Stmt::For {
                var: inner, body, ..
            } if inner == var => {
                let _ = body;
                continue;
            }
            _ => {}
        }
        if stmt.child_blocks().iter().any(|b| writes_var(b, var)) {
            return true;
        }
    }
    false
}

fn splice(body: &mut Block, path: &NodePath, stmts: Vec<Stmt>) -> Result<(), UnrollError> {
    let (block, index) = path.resolve_block_mut(body)?;
    if index >= block.len() {
        return Err(UnrollError::BadPath(IrError::BadPath(format!(
            "statement index {index} out of bounds"
        ))));
    }
    block.splice(index..=index, stmts);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use antarex_ir::interp::{ExecEnv, Interp};
    use antarex_ir::value::Value;
    use antarex_ir::{parse_program, Program};

    fn run(program: Program, f: &str, args: &[Value]) -> (Value, antarex_ir::cost::ExecStats) {
        let mut interp = Interp::new(program);
        let mut env = ExecEnv::new();
        let out = interp.call(f, args, &mut env).unwrap();
        (out, env.stats)
    }

    fn unrolled(src: &str, path: NodePath) -> Program {
        let mut program = parse_program(src).unwrap();
        program
            .edit_function("f", |f| unroll_full(&mut f.body, &path).unwrap())
            .unwrap();
        program
    }

    #[test]
    fn full_unroll_preserves_result_and_cuts_cost() {
        let src = "int f() { int s = 0; for (int i = 0; i < 16; i++) { s += i * i; } return s; }";
        let base = parse_program(src).unwrap();
        let unrolled = unrolled(src, NodePath::root(1));
        let (a, stats_a) = run(base, "f", &[]);
        let (b, stats_b) = run(unrolled, "f", &[]);
        assert_eq!(a, b);
        assert_eq!(b, Value::Int((0..16).map(|i| i * i).sum::<i64>()));
        assert_eq!(stats_b.loop_iters, 0, "loop is gone");
        assert!(stats_b.cost < stats_a.cost, "loop overhead removed");
    }

    #[test]
    fn full_unroll_negative_stride() {
        let src = "int f() { int s = 0; for (int i = 6; i > 0; i -= 2) { s += i; } return s; }";
        let unrolled = unrolled(src, NodePath::root(1));
        let (v, _) = run(unrolled, "f", &[]);
        assert_eq!(v, Value::Int(12)); // 6 + 4 + 2
    }

    #[test]
    fn full_unroll_zero_trip_loop_disappears() {
        let src = "int f() { int s = 7; for (int i = 3; i < 3; i++) { s = 0; } return s; }";
        let program = unrolled(src, NodePath::root(1));
        assert_eq!(program.function("f").unwrap().body.len(), 2);
        let (v, _) = run(program, "f", &[]);
        assert_eq!(v, Value::Int(7));
    }

    #[test]
    fn unknown_trip_count_rejected() {
        let mut program = parse_program(
            "int f(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i; } return s; }",
        )
        .unwrap();
        let mut result = Ok(());
        program
            .edit_function("f", |f| {
                result = unroll_full(&mut f.body, &NodePath::root(1));
            })
            .unwrap();
        assert_eq!(result, Err(UnrollError::UnknownTripCount));
    }

    #[test]
    fn induction_write_rejected() {
        let mut program = parse_program(
            "int f() { int s = 0; for (int i = 0; i < 9; i++) { i = i + 1; s += i; } return s; }",
        )
        .unwrap();
        let mut result = Ok(());
        program
            .edit_function("f", |f| {
                result = unroll_full(&mut f.body, &NodePath::root(1));
            })
            .unwrap();
        assert_eq!(result, Err(UnrollError::InductionVarWritten("i".into())));
    }

    #[test]
    fn non_loop_rejected() {
        let mut program = parse_program("int f() { return 1; }").unwrap();
        let mut result = Ok(());
        program
            .edit_function("f", |f| {
                result = unroll_full(&mut f.body, &NodePath::root(0));
            })
            .unwrap();
        assert_eq!(result, Err(UnrollError::NotAForLoop));
    }

    #[test]
    fn factor_unroll_preserves_result() {
        let src = "int f(double a[]) {
            int s = 0;
            for (int i = 0; i < 10; i++) { s += i * 3; }
            return s;
        }";
        for factor in [1, 2, 3, 4, 5, 7, 10, 99] {
            let mut program = parse_program(src).unwrap();
            program
                .edit_function("f", |f| {
                    unroll_by_factor(&mut f.body, &NodePath::root(1), factor).unwrap()
                })
                .unwrap();
            let (v, _) = run(program, "f", &[Value::from(vec![0.0; 1])]);
            assert_eq!(
                v,
                Value::Int((0..10).map(|i| i * 3).sum::<i64>()),
                "factor {factor}"
            );
        }
    }

    #[test]
    fn factor_unroll_reduces_iterations() {
        let src = "int f() { int s = 0; for (int i = 0; i < 100; i++) { s += i; } return s; }";
        let mut program = parse_program(src).unwrap();
        program
            .edit_function("f", |f| {
                unroll_by_factor(&mut f.body, &NodePath::root(1), 4).unwrap()
            })
            .unwrap();
        let (v, stats) = run(program, "f", &[]);
        assert_eq!(v, Value::Int(4950));
        assert_eq!(stats.loop_iters, 25);
    }

    #[test]
    fn factor_unroll_with_remainder() {
        let src = "int f() { int s = 0; for (int i = 0; i < 10; i++) { s += i; } return s; }";
        let mut program = parse_program(src).unwrap();
        program
            .edit_function("f", |f| {
                unroll_by_factor(&mut f.body, &NodePath::root(1), 4).unwrap()
            })
            .unwrap();
        let (v, stats) = run(program, "f", &[]);
        assert_eq!(v, Value::Int(45));
        assert_eq!(
            stats.loop_iters, 2,
            "8 iterations in main loop, 2 in epilogue"
        );
    }

    #[test]
    fn zero_factor_rejected() {
        let mut body = parse_program("int f() { for (int i = 0; i < 4; i++) { g(); } return 0; }")
            .unwrap()
            .function("f")
            .unwrap()
            .body
            .clone();
        assert_eq!(
            unroll_by_factor(&mut body, &NodePath::root(0), 0),
            Err(UnrollError::ZeroFactor)
        );
    }

    #[test]
    fn nested_loop_unrolled_in_place() {
        let src = "int f() {
            int s = 0;
            for (int i = 0; i < 3; i++) {
                for (int j = 0; j < 4; j++) { s += j; }
            }
            return s;
        }";
        let mut program = parse_program(src).unwrap();
        // unroll the inner loop: path = outer loop (1), body block 0, stmt 0
        program
            .edit_function("f", |f| {
                unroll_full(&mut f.body, &NodePath::root(1).child(0, 0)).unwrap()
            })
            .unwrap();
        let (v, stats) = run(program, "f", &[]);
        assert_eq!(v, Value::Int(18)); // 3 * (0+1+2+3)
        assert_eq!(stats.loop_iters, 3, "only the outer loop remains");
    }
}
