//! Loop tiling (`do LoopTile(size)`).
//!
//! Tiling splits a counted loop into an outer tile loop and an inner
//! intra-tile loop. On real hardware it buys locality; under our cost
//! model its effect is neutral-to-slightly-negative on its own, but it is
//! the *enabling* transformation for the paper's composition story: an
//! inner tile loop has a constant trip count, so `LoopUnroll('full')`
//! applies where it could not before (dynamic bounds). This mirrors the
//! LARA hardware-synthesis work the paper cites (refs. 12 and 13), where
//! transformation *sequences* are the knob.

use super::subst::substitute_block;
use super::unroll::UnrollError;
use antarex_ir::{analysis, BinOp, Block, Expr, NodePath, Stmt};

/// Tiles the `for` loop addressed by `path` with the given tile size.
///
/// The loop must have a statically-known trip count (like full unrolling)
/// and the tile size must divide... no: a remainder loop is emitted when
/// the trip count is not a multiple of the tile size.
///
/// The rewrite of `for (i = start; i < bound; i = i + stride) body` is:
///
/// ```text
/// for (i_t = start; i_t != start + main*stride; i_t = i_t + size*stride) {
///     for (i = i_t; i != i_t + size*stride; i = i + stride) body
/// }
/// // remainder iterations, fully expanded
/// ```
///
/// # Errors
///
/// Returns [`UnrollError`] under the same conditions as full unrolling
/// (not a `for`, unknown trip count, induction variable written), or
/// [`UnrollError::ZeroFactor`] for a zero tile size.
pub fn tile(body: &mut Block, path: &NodePath, size: u64) -> Result<(), UnrollError> {
    if size == 0 {
        return Err(UnrollError::ZeroFactor);
    }
    let stmt = path.resolve(body)?.clone();
    let Stmt::For {
        var,
        init,
        body: loop_body,
        step,
        ..
    } = &stmt
    else {
        return Err(UnrollError::NotAForLoop);
    };
    let count = analysis::trip_count(&stmt).ok_or(UnrollError::UnknownTripCount)?;
    if writes_var(loop_body, var) {
        return Err(UnrollError::InductionVarWritten(var.clone()));
    }
    let start = init.as_const_int().ok_or(UnrollError::UnknownTripCount)?;
    let stride = stride_of(step, var).ok_or(UnrollError::UnknownTripCount)?;
    if size >= count {
        return Ok(()); // tile covers the whole loop: nothing to do
    }

    let tile_var = format!("{var}_t");
    let main_iters = count - count % size;
    let outer_bound = start + (main_iters as i64) * stride;
    let tile_span = (size as i64) * stride;

    let inner = Stmt::For {
        var: var.clone(),
        init: Expr::var(&tile_var),
        cond: Expr::binary(
            BinOp::Ne,
            Expr::var(var),
            Expr::binary(BinOp::Add, Expr::var(&tile_var), Expr::Int(tile_span)),
        ),
        step: Expr::binary(BinOp::Add, Expr::var(var), Expr::Int(stride)),
        body: loop_body.clone(),
    };
    let outer = Stmt::For {
        var: tile_var.clone(),
        init: Expr::Int(start),
        cond: Expr::binary(BinOp::Ne, Expr::var(&tile_var), Expr::Int(outer_bound)),
        step: Expr::binary(BinOp::Add, Expr::var(&tile_var), Expr::Int(tile_span)),
        body: vec![inner],
    };
    let mut stmts = vec![outer];
    for iter in main_iters..count {
        let value = start + (iter as i64) * stride;
        stmts.extend(substitute_block(loop_body, var, &Expr::Int(value)));
    }

    let (block, index) = path.resolve_block_mut(body)?;
    if index >= block.len() {
        return Err(UnrollError::BadPath(antarex_ir::IrError::BadPath(format!(
            "statement index {index} out of bounds"
        ))));
    }
    block.splice(index..=index, stmts);
    Ok(())
}

fn stride_of(step: &Expr, var: &str) -> Option<i64> {
    match step {
        Expr::Binary(BinOp::Add, lhs, rhs) => match (&**lhs, &**rhs) {
            (Expr::Var(v), _) if v == var => rhs.as_const_int(),
            (_, Expr::Var(v)) if v == var => lhs.as_const_int(),
            _ => None,
        },
        Expr::Binary(BinOp::Sub, lhs, rhs) => match (&**lhs, &**rhs) {
            (Expr::Var(v), _) if v == var => rhs.as_const_int().map(|s| -s),
            _ => None,
        },
        _ => None,
    }
}

fn writes_var(block: &Block, var: &str) -> bool {
    use antarex_ir::LValue;
    for stmt in block {
        match stmt {
            Stmt::Assign {
                target: LValue::Var(name),
                ..
            } if name == var => return true,
            Stmt::Decl { name, .. } if name == var => return true,
            Stmt::For { var: inner, .. } if inner == var => continue,
            _ => {}
        }
        if stmt.child_blocks().iter().any(|b| writes_var(b, var)) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use antarex_ir::interp::{ExecEnv, Interp};
    use antarex_ir::parse_program;
    use antarex_ir::value::Value;

    fn run_f(program: &antarex_ir::Program) -> Value {
        Interp::new(program.clone())
            .call("f", &[], &mut ExecEnv::new())
            .unwrap()
    }

    #[test]
    fn tiling_preserves_results() {
        let src = "int f() { int s = 0; for (int i = 0; i < 24; i++) { s += i * i; } return s; }";
        let reference = run_f(&parse_program(src).unwrap());
        for size in [1u64, 2, 3, 4, 6, 8, 24, 99] {
            let mut program = parse_program(src).unwrap();
            program
                .edit_function("f", |f| {
                    tile(&mut f.body, &NodePath::root(1), size).unwrap()
                })
                .unwrap();
            assert_eq!(run_f(&program), reference, "tile size {size}");
        }
    }

    #[test]
    fn tiling_with_remainder() {
        let src = "int f() { int s = 0; for (int i = 0; i < 10; i++) { s += i; } return s; }";
        let mut program = parse_program(src).unwrap();
        program
            .edit_function("f", |f| tile(&mut f.body, &NodePath::root(1), 4).unwrap())
            .unwrap();
        assert_eq!(run_f(&program), Value::Int(45));
        // 8 iterations tiled (2 tiles of 4) + 2 expanded remainder stmts
        let f = program.function("f").unwrap();
        assert!(f.body.len() > 3);
    }

    #[test]
    fn inner_tile_loop_has_constant_trip_count() {
        // the enabling property: after tiling, the inner loop is
        // fully-unrollable even though the tile variable is dynamic
        let src = "int f() { int s = 0; for (int i = 0; i < 32; i++) { s += i; } return s; }";
        let mut program = parse_program(src).unwrap();
        program
            .edit_function("f", |f| tile(&mut f.body, &NodePath::root(1), 8).unwrap())
            .unwrap();
        let f = program.function("f").unwrap();
        let Stmt::For {
            body: outer_body, ..
        } = &f.body[1]
        else {
            panic!("expected outer tile loop");
        };
        // the inner loop: i from i_t to i_t + 8 — trip count is not
        // *statically* constant by our analyser (bounds reference i_t),
        // but unrolling by the tile factor is now always exact
        assert!(matches!(&outer_body[0], Stmt::For { .. }));
        assert_eq!(run_f(&program), Value::Int((0..32).sum::<i64>()));
    }

    #[test]
    fn non_divisible_and_degenerate_sizes() {
        let src = "int f() { int s = 0; for (int i = 0; i < 7; i++) { s += i; } return s; }";
        let mut program = parse_program(src).unwrap();
        program
            .edit_function("f", |f| tile(&mut f.body, &NodePath::root(1), 3).unwrap())
            .unwrap();
        assert_eq!(run_f(&program), Value::Int(21));
        // tile >= trip count: loop untouched
        let mut program = parse_program(src).unwrap();
        program
            .edit_function("f", |f| tile(&mut f.body, &NodePath::root(1), 7).unwrap())
            .unwrap();
        assert_eq!(
            antarex_ir::analysis::loops(&program.function("f").unwrap().body).len(),
            1
        );
    }

    #[test]
    fn negative_stride_tiling() {
        let src = "int f() { int s = 0; for (int i = 12; i > 0; i -= 2) { s += i; } return s; }";
        let mut program = parse_program(src).unwrap();
        program
            .edit_function("f", |f| tile(&mut f.body, &NodePath::root(1), 2).unwrap())
            .unwrap();
        assert_eq!(run_f(&program), Value::Int(42)); // 12+10+8+6+4+2
    }

    #[test]
    fn errors_mirror_unrolling() {
        let src = "int f(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i; } return s; }";
        let mut program = parse_program(src).unwrap();
        let mut result = Ok(());
        program
            .edit_function("f", |f| result = tile(&mut f.body, &NodePath::root(1), 4))
            .unwrap();
        assert_eq!(result, Err(UnrollError::UnknownTripCount));
        let mut block = parse_program("int f() { return 1; }")
            .unwrap()
            .function("f")
            .unwrap()
            .body
            .clone();
        assert_eq!(
            tile(&mut block, &NodePath::root(0), 0),
            Err(UnrollError::ZeroFactor)
        );
        assert_eq!(
            tile(&mut block, &NodePath::root(0), 4),
            Err(UnrollError::NotAForLoop)
        );
    }
}
