//! Function specialization (`Specialize($fCall, arg, value)`, paper Fig. 4).
//!
//! Specialization clones a function, binds one parameter to a concrete
//! runtime value (constant propagation), folds the result, and gives the
//! clone a derived name. Combined with [`unroll`](super::unroll) — whose
//! trip counts become constant after binding a size parameter — this is the
//! split-compilation payoff the paper describes: the *offline* step prepared
//! the call site, the *online* step stamps out a version for the observed
//! value.

use super::dce::dce_fixpoint;
use super::fold::fold_block;
use super::subst::substitute_block;
use antarex_ir::value::Value;
use antarex_ir::{Expr, Function, Program};
use std::fmt;

/// Why specialization failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecializeError {
    /// The function to specialize does not exist.
    UnknownFunction(String),
    /// The function has no parameter with the given name.
    UnknownParam {
        /// Function name.
        function: String,
        /// Offending parameter name.
        param: String,
    },
    /// The binding value cannot appear as a source literal (arrays, unit).
    UnsupportedValue(String),
}

impl fmt::Display for SpecializeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecializeError::UnknownFunction(name) => write!(f, "unknown function `{name}`"),
            SpecializeError::UnknownParam { function, param } => {
                write!(f, "function `{function}` has no parameter `{param}`")
            }
            SpecializeError::UnsupportedValue(what) => {
                write!(f, "cannot specialize on non-scalar value {what}")
            }
        }
    }
}

impl std::error::Error for SpecializeError {}

/// Derives the name of the specialized version of `function` with `param`
/// bound to `value` (e.g. `kernel__size_64`).
pub fn specialized_name(function: &str, param: &str, value: &Value) -> String {
    let tag = match value {
        Value::Int(v) => v.to_string().replace('-', "m"),
        Value::Float(v) => format!("{v}").replace('-', "m").replace('.', "p"),
        other => format!("{other}"),
    };
    format!("{function}__{param}_{tag}")
}

/// Builds a specialized clone of `function` with `param` bound to `value`.
///
/// The clone substitutes the value throughout the body and constant-folds.
/// The bound parameter is *kept* in the signature (its incoming value is
/// simply never read), so existing call sites — and the runtime dispatcher
/// that redirects them — keep passing the same argument list. The caller is
/// responsible for inserting the returned function into the program (and
/// for updating call sites or a [version table](crate::versioning)).
///
/// # Errors
///
/// See [`SpecializeError`].
pub fn specialize(
    program: &Program,
    function: &str,
    param: &str,
    value: &Value,
) -> Result<Function, SpecializeError> {
    let original = program
        .function(function)
        .ok_or_else(|| SpecializeError::UnknownFunction(function.to_string()))?;
    let index = original
        .param_index(param)
        .ok_or_else(|| SpecializeError::UnknownParam {
            function: function.to_string(),
            param: param.to_string(),
        })?;
    let literal = match value {
        Value::Int(v) => Expr::Int(*v),
        Value::Float(v) => Expr::Float(*v),
        Value::Str(s) => Expr::Str(s.clone()),
        other => return Err(SpecializeError::UnsupportedValue(other.to_string())),
    };
    let _ = index; // parameter kept for call compatibility; value unused
    let mut body = fold_block(&substitute_block(&original.body, param, &literal));
    dce_fixpoint(&mut body); // folding often leaves dead setup stores
    Ok(Function::new(
        specialized_name(function, param, value),
        original.ret,
        original.params.clone(),
        body,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use antarex_ir::interp::{ExecEnv, Interp};
    use antarex_ir::parse_program;

    const KERNEL: &str = "double kernel(double a[], int size) {
        double s = 0.0;
        for (int i = 0; i < size; i++) { s += a[i] * a[i]; }
        if (size > 100) { s = s / 2.0; }
        return s;
    }";

    #[test]
    fn specialization_preserves_result() {
        let program = parse_program(KERNEL).unwrap();
        let spec = specialize(&program, "kernel", "size", &Value::Int(4)).unwrap();
        assert_eq!(spec.name, "kernel__size_4");
        assert_eq!(
            spec.params.len(),
            2,
            "signature kept for call compatibility"
        );

        let mut program = program;
        program.insert(spec);
        let data = Value::from(vec![1.0, 2.0, 3.0, 4.0]);
        let mut interp = Interp::new(program);
        let generic = interp
            .call(
                "kernel",
                &[data.clone(), Value::Int(4)],
                &mut ExecEnv::new(),
            )
            .unwrap();
        // the bound parameter's incoming value is ignored: pass garbage
        let specialized = interp
            .call(
                "kernel__size_4",
                &[data, Value::Int(999)],
                &mut ExecEnv::new(),
            )
            .unwrap();
        assert_eq!(generic, specialized);
    }

    #[test]
    fn specialization_makes_trip_count_constant() {
        use antarex_ir::analysis::trip_count;
        let program = parse_program(KERNEL).unwrap();
        assert_eq!(
            trip_count(&program.function("kernel").unwrap().body[1]),
            None
        );
        let spec = specialize(&program, "kernel", "size", &Value::Int(8)).unwrap();
        assert_eq!(trip_count(&spec.body[1]), Some(8));
    }

    #[test]
    fn specialization_prunes_dead_branch() {
        let program = parse_program(KERNEL).unwrap();
        let spec = specialize(&program, "kernel", "size", &Value::Int(8)).unwrap();
        // size > 100 folds to false: if-statement removed
        assert_eq!(spec.body.len(), 3, "decl, loop, return — branch pruned");
    }

    #[test]
    fn specialize_plus_unroll_beats_generic() {
        use crate::transform::unroll::unroll_full;
        use antarex_ir::NodePath;
        let program = parse_program(KERNEL).unwrap();
        let mut spec = specialize(&program, "kernel", "size", &Value::Int(16)).unwrap();
        unroll_full(&mut spec.body, &NodePath::root(1)).unwrap();
        let spec_name = spec.name.clone();
        let mut program = program;
        program.insert(spec);

        let data = Value::from(vec![0.5; 16]);
        let mut interp = Interp::new(program);
        let mut env_generic = ExecEnv::new();
        let generic = interp
            .call("kernel", &[data.clone(), Value::Int(16)], &mut env_generic)
            .unwrap();
        let mut env_spec = ExecEnv::new();
        let specialized = interp
            .call(&spec_name, &[data, Value::Int(16)], &mut env_spec)
            .unwrap();
        assert_eq!(generic, specialized);
        assert!(
            env_spec.stats.cost < env_generic.stats.cost,
            "specialized+unrolled {} !< generic {}",
            env_spec.stats.cost,
            env_generic.stats.cost
        );
    }

    #[test]
    fn float_and_negative_names_sanitized() {
        assert_eq!(specialized_name("k", "x", &Value::Float(-2.5)), "k__x_m2p5");
        assert_eq!(specialized_name("k", "n", &Value::Int(-3)), "k__n_m3");
    }

    #[test]
    fn unknown_function_and_param_errors() {
        let program = parse_program(KERNEL).unwrap();
        assert!(matches!(
            specialize(&program, "ghost", "x", &Value::Int(1)),
            Err(SpecializeError::UnknownFunction(_))
        ));
        assert!(matches!(
            specialize(&program, "kernel", "ghost", &Value::Int(1)),
            Err(SpecializeError::UnknownParam { .. })
        ));
    }

    #[test]
    fn array_value_rejected() {
        let program = parse_program(KERNEL).unwrap();
        assert!(matches!(
            specialize(&program, "kernel", "size", &Value::Array(vec![])),
            Err(SpecializeError::UnsupportedValue(_))
        ));
    }
}
