//! Code transformations triggered by weaver actions.

pub mod dce;
pub mod fold;
pub mod inline;
pub mod specialize;
pub mod subst;
pub mod tile;
pub mod unroll;
