//! Statement-level variable substitution (constant propagation primitive).

use antarex_ir::{Block, Expr, LValue, Stmt};

/// Replaces every *read* of variable `name` with `value` throughout a block.
///
/// Writes to `name` are left intact (the caller decides whether the variable
/// is genuinely constant; specialization removes the parameter entirely so no
/// writes can exist, and unrolling substitutes the induction variable only in
/// body copies where it is not reassigned).
pub fn substitute_block(block: &Block, name: &str, value: &Expr) -> Block {
    block
        .iter()
        .map(|s| substitute_stmt(s, name, value))
        .collect()
}

/// Replaces every read of `name` with `value` in one statement (recursively).
pub fn substitute_stmt(stmt: &Stmt, name: &str, value: &Expr) -> Stmt {
    match stmt {
        Stmt::Decl { name: n, ty, init } => Stmt::Decl {
            name: n.clone(),
            ty: *ty,
            init: init.as_ref().map(|e| e.substitute(name, value)),
        },
        Stmt::ArrayDecl { .. } => stmt.clone(),
        Stmt::Assign { target, value: rhs } => Stmt::Assign {
            target: match target {
                LValue::Var(v) => LValue::Var(v.clone()),
                LValue::Index(arr, idx) => {
                    LValue::Index(arr.clone(), Box::new(idx.substitute(name, value)))
                }
            },
            value: rhs.substitute(name, value),
        },
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => Stmt::If {
            cond: cond.substitute(name, value),
            then_branch: substitute_block(then_branch, name, value),
            else_branch: else_branch
                .as_ref()
                .map(|b| substitute_block(b, name, value)),
        },
        Stmt::For {
            var,
            init,
            cond,
            step,
            body,
        } => {
            if var == name {
                // the loop shadows the substituted variable
                Stmt::For {
                    var: var.clone(),
                    init: init.substitute(name, value),
                    cond: cond.clone(),
                    step: step.clone(),
                    body: body.clone(),
                }
            } else {
                Stmt::For {
                    var: var.clone(),
                    init: init.substitute(name, value),
                    cond: cond.substitute(name, value),
                    step: step.substitute(name, value),
                    body: substitute_block(body, name, value),
                }
            }
        }
        Stmt::While { cond, body } => Stmt::While {
            cond: cond.substitute(name, value),
            body: substitute_block(body, name, value),
        },
        Stmt::Return(e) => Stmt::Return(e.as_ref().map(|e| e.substitute(name, value))),
        Stmt::ExprStmt(e) => Stmt::ExprStmt(e.substitute(name, value)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antarex_ir::parse_program;
    use antarex_ir::printer::print_function;

    fn substituted(src: &str, name: &str, value: i64) -> String {
        let program = parse_program(src).unwrap();
        let f = program.function("f").unwrap();
        let body = substitute_block(&f.body, name, &Expr::Int(value));
        let mut clone = (**f).clone();
        clone.body = body;
        print_function(&clone)
    }

    #[test]
    fn substitutes_reads_everywhere() {
        let text = substituted(
            "int f(int n) { int x = n + 1; if (n > 2) { return n; } return x; }",
            "n",
            9,
        );
        assert!(text.contains("int x = (9 + 1);"));
        assert!(text.contains("if ((9 > 2))"));
        assert!(text.contains("return 9;"));
    }

    #[test]
    fn loop_variable_shadows_substitution() {
        let text = substituted(
            "int f(int i) { int s = i; for (int i = 0; i < 4; i++) { s += i; } return s; }",
            "i",
            7,
        );
        // the init read of outer i is substituted...
        assert!(text.contains("int s = 7;"));
        // ...but the loop body keeps its own i
        assert!(text.contains("s = (s + i);"));
        assert!(text.contains("i < 4"));
    }

    #[test]
    fn array_index_reads_are_substituted() {
        let text = substituted("void f(double a[], int k) { a[k] = a[k] + 1.0; }", "k", 3);
        assert!(text.contains("a[3] = (a[3] + 1.0);"));
    }
}
