//! Code-injection actions (`insert before` / `insert after`).
//!
//! These implement the instrumentation half of the paper's Fig. 2 aspect:
//! statements produced by a DSL template are spliced into a function body
//! relative to a join point addressed by [`NodePath`].

use antarex_ir::{Block, IrError, NodePath, Stmt};

/// Where to splice relative to the addressed statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InsertPos {
    /// Immediately before the statement.
    Before,
    /// Immediately after the statement.
    After,
}

/// Inserts `stmts` immediately before the statement addressed by `path`.
///
/// # Errors
///
/// Returns [`IrError::BadPath`] if the path does not address a statement of
/// `body`.
pub fn insert_before(body: &mut Block, path: &NodePath, stmts: Vec<Stmt>) -> Result<(), IrError> {
    insert_at(body, path, stmts, InsertPos::Before)
}

/// Inserts `stmts` immediately after the statement addressed by `path`.
///
/// # Errors
///
/// Returns [`IrError::BadPath`] if the path does not address a statement of
/// `body`.
pub fn insert_after(body: &mut Block, path: &NodePath, stmts: Vec<Stmt>) -> Result<(), IrError> {
    insert_at(body, path, stmts, InsertPos::After)
}

/// Inserts `stmts` relative to the statement addressed by `path`.
///
/// # Errors
///
/// Returns [`IrError::BadPath`] if the path does not address a statement of
/// `body`.
pub fn insert_at(
    body: &mut Block,
    path: &NodePath,
    stmts: Vec<Stmt>,
    pos: InsertPos,
) -> Result<(), IrError> {
    let (block, index) = path.resolve_block_mut(body)?;
    if index >= block.len() {
        return Err(IrError::BadPath(format!(
            "statement index {index} out of bounds (len {})",
            block.len()
        )));
    }
    let at = match pos {
        InsertPos::Before => index,
        InsertPos::After => index + 1,
    };
    for (offset, stmt) in stmts.into_iter().enumerate() {
        block.insert(at + offset, stmt);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use antarex_ir::{parse_program, parse_stmt, printer::print_function};

    fn body_of(src: &str) -> Block {
        parse_program(src)
            .unwrap()
            .function("f")
            .unwrap()
            .body
            .clone()
    }

    #[test]
    fn insert_before_top_level_call() {
        let mut body = body_of("void f() { kernel(1); }");
        insert_before(
            &mut body,
            &NodePath::root(0),
            vec![parse_stmt("probe();").unwrap()],
        )
        .unwrap();
        assert_eq!(body.len(), 2);
        assert!(matches!(&body[0], Stmt::ExprStmt(antarex_ir::Expr::Call(n, _)) if n == "probe"));
    }

    #[test]
    fn insert_after_nested_statement() {
        let mut body = body_of("void f(int n) { for (int i = 0; i < n; i++) { kernel(i); } }");
        let path = NodePath::root(0).child(0, 0);
        insert_after(&mut body, &path, vec![parse_stmt("probe();").unwrap()]).unwrap();
        match &body[0] {
            Stmt::For {
                body: loop_body, ..
            } => {
                assert_eq!(loop_body.len(), 2);
                assert!(matches!(
                    &loop_body[1],
                    Stmt::ExprStmt(antarex_ir::Expr::Call(n, _)) if n == "probe"
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn insert_multiple_preserves_order() {
        let mut body = body_of("void f() { kernel(1); }");
        let stmts = vec![parse_stmt("a();").unwrap(), parse_stmt("b();").unwrap()];
        insert_before(&mut body, &NodePath::root(0), stmts).unwrap();
        let names: Vec<String> = body
            .iter()
            .filter_map(|s| match s {
                Stmt::ExprStmt(antarex_ir::Expr::Call(n, _)) => Some(n.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(names, vec!["a", "b", "kernel"]);
    }

    #[test]
    fn insert_out_of_bounds_errors() {
        let mut body = body_of("void f() { kernel(1); }");
        let err = insert_before(&mut body, &NodePath::root(5), vec![]).unwrap_err();
        assert!(matches!(err, IrError::BadPath(_)));
    }

    #[test]
    fn woven_function_still_prints() {
        let mut program = parse_program("void f() { kernel(1); }").unwrap();
        program
            .edit_function("f", |f| {
                insert_before(
                    &mut f.body,
                    &NodePath::root(0),
                    vec![parse_stmt("profile_args(\"f\", 1);").unwrap()],
                )
                .unwrap();
            })
            .unwrap();
        let text = print_function(program.function("f").unwrap());
        assert!(text.contains("profile_args(\"f\", 1);"));
    }
}
