//! # antarex-weaver — source-to-source transformation engine
//!
//! Implements the weaving *actions* of the ANTAREX tool flow (Silvano et
//! al., DATE 2016): the operations a LARA-style aspect triggers on the
//! program under weaving.
//!
//! * [`insert`] — inject instrumentation statements before/after a join
//!   point (paper Fig. 2, `insert before %{profile_args(...)}%`),
//! * [`transform::unroll`] — full and partial loop unrolling (paper Fig. 3,
//!   `do LoopUnroll('full')`),
//! * [`transform::specialize`] — function specialization by constant
//!   propagation and folding (paper Fig. 4, `Specialize($fCall, ...)`),
//! * [`transform::fold`] — constant folding / branch pruning that makes
//!   specialization pay off,
//! * [`versioning`] — the multi-version dispatch tables behind
//!   `PrepareSpecialize` / `AddVersion`, consulted at runtime by the
//!   dynamic weaver (split compilation: offline preparation, online
//!   binding).
//!
//! # Examples
//!
//! ```
//! use antarex_ir::{parse_program, NodePath};
//! use antarex_weaver::transform::unroll::unroll_full;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut program = parse_program(
//!     "int f() { int s = 0; for (int i = 0; i < 4; i++) { s += i; } return s; }",
//! )?;
//! program.edit_function("f", |f| {
//!     unroll_full(&mut f.body, &NodePath::root(1)).expect("constant trip count");
//! })?;
//! // The loop is gone; 4 copies of the body remain.
//! assert_eq!(program.function("f").unwrap().body.len(), 6);
//! # Ok(())
//! # }
//! ```

pub mod insert;
pub mod transform;
pub mod versioning;

pub use insert::{insert_after, insert_before, InsertPos};
pub use versioning::VersionStore;
