//! Multi-version dispatch tables (`PrepareSpecialize` / `AddVersion`).
//!
//! The paper's Fig. 4 aspect "statically prepares the function call to
//! support several versions of the function" and later "adds the specialized
//! version as one of the possible function variants that can be called".
//! [`VersionStore`] is that mechanism: the *offline* half of split
//! compilation registers which (function, parameter) pairs are dispatchable;
//! the *online* half adds per-value specialized versions and resolves calls
//! against them.

use antarex_ir::value::Value;
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Canonical dispatch key derived from a runtime argument value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VersionKey(String);

impl VersionKey {
    /// Builds a key from a runtime value. Floats are keyed by their exact
    /// bit pattern, so `0.1` and `0.1 + 1e-18` are distinct versions.
    pub fn of(value: &Value) -> Option<VersionKey> {
        match value {
            Value::Int(v) => Some(VersionKey(format!("i{v}"))),
            Value::Float(v) => Some(VersionKey(format!("f{:016x}", v.to_bits()))),
            Value::Str(s) => Some(VersionKey(format!("s{s}"))),
            Value::Array(_) | Value::Unit => None,
        }
    }
}

impl fmt::Display for VersionKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

#[derive(Debug, Clone, Default)]
struct Table {
    param: String,
    param_index: usize,
    versions: BTreeMap<VersionKey, String>,
    /// Logical timestamp of each version's last dispatch (LRU state).
    last_used: BTreeMap<VersionKey, u64>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Registry of multi-versioned functions and their specialized variants.
///
/// # Examples
///
/// ```
/// use antarex_weaver::VersionStore;
/// use antarex_ir::value::Value;
///
/// let mut store = VersionStore::new();
/// store.prepare("kernel", "size", 1);
/// store.add_version("kernel", &Value::Int(64), "kernel__size_64");
/// let resolved = store.resolve("kernel", &[Value::Unit, Value::Int(64)]);
/// assert_eq!(resolved, Some("kernel__size_64"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct VersionStore {
    tables: HashMap<String, Table>,
    /// Maximum versions per function; `None` = unbounded.
    capacity: Option<usize>,
    clock: u64,
}

impl VersionStore {
    /// Creates an empty, unbounded store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a store evicting least-recently-dispatched versions beyond
    /// `capacity` per function — code caches are finite in real JIT
    /// systems, and eviction pressure is part of the split-compilation
    /// trade-off.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        VersionStore {
            capacity: Some(capacity),
            ..Self::default()
        }
    }

    /// The per-function capacity, if bounded.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Total versions evicted from a function's table so far.
    pub fn evictions(&self, function: &str) -> u64 {
        self.tables.get(function).map_or(0, |t| t.evictions)
    }

    /// Registers `function` for multi-version dispatch on the parameter
    /// `param` at position `param_index` (the offline preparation step).
    ///
    /// Re-preparing an already-prepared function resets its version table.
    pub fn prepare(&mut self, function: &str, param: &str, param_index: usize) {
        self.tables.insert(
            function.to_string(),
            Table {
                param: param.to_string(),
                param_index,
                ..Table::default()
            },
        );
    }

    /// Returns `true` if the function was prepared for dispatch.
    pub fn is_prepared(&self, function: &str) -> bool {
        self.tables.contains_key(function)
    }

    /// The dispatch parameter (name, index) of a prepared function.
    pub fn dispatch_param(&self, function: &str) -> Option<(&str, usize)> {
        self.tables
            .get(function)
            .map(|t| (t.param.as_str(), t.param_index))
    }

    /// Adds a specialized version for the given dispatch value (the online
    /// binding step). Returns `false` if the function was never prepared or
    /// the value cannot be keyed.
    ///
    /// On a capacity-bounded store, inserting past the per-function limit
    /// evicts the least-recently-dispatched version (its function body
    /// stays in the program but will no longer be dispatched to; a
    /// re-occurring value re-specializes).
    pub fn add_version(&mut self, function: &str, value: &Value, specialized: &str) -> bool {
        let capacity = self.capacity;
        self.clock += 1;
        let clock = self.clock;
        let Some(table) = self.tables.get_mut(function) else {
            return false;
        };
        let Some(key) = VersionKey::of(value) else {
            return false;
        };
        table.versions.insert(key.clone(), specialized.to_string());
        table.last_used.insert(key.clone(), clock);
        if let Some(capacity) = capacity {
            while table.versions.len() > capacity {
                let Some(victim) = table
                    .last_used
                    .iter()
                    .filter(|(k, _)| **k != key)
                    .min_by_key(|(_, &t)| t)
                    .map(|(k, _)| k.clone())
                else {
                    break;
                };
                table.versions.remove(&victim);
                table.last_used.remove(&victim);
                table.evictions += 1;
            }
        }
        true
    }

    /// Resolves a call to `function` with runtime `args` to a specialized
    /// variant name, if one was registered for the dispatch argument.
    ///
    /// Updates hit/miss counters used by the split-compilation experiments.
    pub fn resolve(&mut self, function: &str, args: &[Value]) -> Option<&str> {
        self.clock += 1;
        let clock = self.clock;
        let table = self.tables.get_mut(function)?;
        let arg = args.get(table.param_index)?;
        let key = VersionKey::of(arg)?;
        match table.versions.get(&key) {
            Some(name) => {
                table.hits += 1;
                table.last_used.insert(key, clock);
                Some(name.as_str())
            }
            None => {
                table.misses += 1;
                None
            }
        }
    }

    /// Like [`VersionStore::resolve`] but without touching the counters.
    pub fn peek(&self, function: &str, args: &[Value]) -> Option<&str> {
        let table = self.tables.get(function)?;
        let arg = args.get(table.param_index)?;
        let key = VersionKey::of(arg)?;
        table.versions.get(&key).map(String::as_str)
    }

    /// Number of versions registered for a function.
    pub fn version_count(&self, function: &str) -> usize {
        self.tables.get(function).map_or(0, |t| t.versions.len())
    }

    /// Dispatch cache (hits, misses) for a function.
    pub fn stats(&self, function: &str) -> (u64, u64) {
        self.tables
            .get(function)
            .map_or((0, 0), |t| (t.hits, t.misses))
    }

    /// Names of all prepared functions.
    pub fn prepared_functions(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_add_resolve_cycle() {
        let mut store = VersionStore::new();
        assert!(!store.is_prepared("kernel"));
        store.prepare("kernel", "size", 1);
        assert!(store.is_prepared("kernel"));
        assert_eq!(store.dispatch_param("kernel"), Some(("size", 1)));

        assert!(store.add_version("kernel", &Value::Int(8), "kernel__size_8"));
        assert!(store.add_version("kernel", &Value::Int(16), "kernel__size_16"));
        assert_eq!(store.version_count("kernel"), 2);

        let args = [Value::Unit, Value::Int(16)];
        assert_eq!(store.resolve("kernel", &args), Some("kernel__size_16"));
        assert_eq!(
            store.resolve("kernel", &[Value::Unit, Value::Int(99)]),
            None
        );
        assert_eq!(store.stats("kernel"), (1, 1));
    }

    #[test]
    fn unprepared_function_rejects_versions() {
        let mut store = VersionStore::new();
        assert!(!store.add_version("ghost", &Value::Int(1), "ghost_1"));
        assert_eq!(store.resolve("ghost", &[Value::Int(1)]), None);
    }

    #[test]
    fn float_keys_are_exact() {
        let mut store = VersionStore::new();
        store.prepare("k", "x", 0);
        store.add_version("k", &Value::Float(0.5), "k_half");
        assert_eq!(store.resolve("k", &[Value::Float(0.5)]), Some("k_half"));
        assert_eq!(store.resolve("k", &[Value::Float(0.5000001)]), None);
    }

    #[test]
    fn array_dispatch_value_is_unkeyable() {
        let mut store = VersionStore::new();
        store.prepare("k", "a", 0);
        assert!(!store.add_version("k", &Value::Array(vec![]), "nope"));
        assert_eq!(store.resolve("k", &[Value::Array(vec![])]), None);
    }

    #[test]
    fn re_prepare_resets_versions() {
        let mut store = VersionStore::new();
        store.prepare("k", "x", 0);
        store.add_version("k", &Value::Int(1), "k_1");
        store.prepare("k", "x", 0);
        assert_eq!(store.version_count("k"), 0);
    }

    #[test]
    fn capacity_evicts_least_recently_dispatched() {
        let mut store = VersionStore::with_capacity(2);
        store.prepare("k", "x", 0);
        store.add_version("k", &Value::Int(1), "k_1");
        store.add_version("k", &Value::Int(2), "k_2");
        // touch version 1 so version 2 becomes the LRU
        assert_eq!(store.resolve("k", &[Value::Int(1)]), Some("k_1"));
        store.add_version("k", &Value::Int(3), "k_3");
        assert_eq!(store.version_count("k"), 2);
        assert_eq!(store.evictions("k"), 1);
        assert_eq!(store.peek("k", &[Value::Int(2)]), None, "LRU evicted");
        assert_eq!(store.peek("k", &[Value::Int(1)]), Some("k_1"));
        assert_eq!(store.peek("k", &[Value::Int(3)]), Some("k_3"));
    }

    #[test]
    fn unbounded_store_never_evicts() {
        let mut store = VersionStore::new();
        store.prepare("k", "x", 0);
        for i in 0..100 {
            store.add_version("k", &Value::Int(i), &format!("k_{i}"));
        }
        assert_eq!(store.version_count("k"), 100);
        assert_eq!(store.evictions("k"), 0);
        assert_eq!(store.capacity(), None);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = VersionStore::with_capacity(0);
    }

    #[test]
    fn peek_does_not_count() {
        let mut store = VersionStore::new();
        store.prepare("k", "x", 0);
        store.add_version("k", &Value::Int(1), "k_1");
        assert_eq!(store.peek("k", &[Value::Int(1)]), Some("k_1"));
        assert_eq!(store.stats("k"), (0, 0));
    }
}
