//! A minimal, dependency-free stand-in for the `criterion` benchmark
//! harness.
//!
//! The build environment has no route to crates.io, so the workspace
//! vendors the small slice of criterion's API that the bench targets
//! under `crates/bench/benches/` actually use: [`Criterion`],
//! [`Bencher::iter`], benchmark groups with [`BenchmarkId`] parameters,
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros. Statistics are deliberately simple — each benchmark is
//! warmed up, then timed over a batch sized to a fixed measurement
//! budget, and the mean and best per-iteration times are printed. No
//! HTML reports, no outlier analysis; enough to compare mechanism
//! costs between commits.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Per-benchmark timing driver handed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    measurement: Option<Measurement>,
}

#[derive(Debug, Clone, Copy)]
struct Measurement {
    iterations: u64,
    total: Duration,
    best: Duration,
}

impl Bencher {
    /// Times `routine`, choosing an iteration count to fill the
    /// measurement budget.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // warm-up and calibration: run until ~25 ms have elapsed
        let warmup_budget = Duration::from_millis(25);
        let warmup_start = Instant::now();
        let mut calibration_iters: u64 = 0;
        while warmup_start.elapsed() < warmup_budget {
            black_box(routine());
            calibration_iters += 1;
        }
        let per_iter = warmup_start.elapsed() / calibration_iters.max(1) as u32;
        // measurement: batches totalling ~100 ms, at least 3 batches
        let measure_budget = Duration::from_millis(100);
        let batch = ((measure_budget.as_nanos() / 3).max(1) / per_iter.as_nanos().max(1))
            .clamp(1, u128::from(u32::MAX)) as u64;
        let mut total = Duration::ZERO;
        let mut best = Duration::MAX;
        let mut iterations = 0u64;
        while total < measure_budget {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            total += elapsed;
            iterations += batch;
            best = best.min(elapsed / batch.max(1) as u32);
        }
        self.measurement = Some(Measurement {
            iterations,
            total,
            best,
        });
    }

    /// Times `routine`, rebuilding its input with `setup` before each
    /// call; only the routine is on the clock.
    pub fn iter_with_setup<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
    ) {
        // setup runs off the clock, so measure call-by-call rather
        // than in batches
        let warmup_budget = Duration::from_millis(25);
        let warmup_start = Instant::now();
        while warmup_start.elapsed() < warmup_budget {
            black_box(routine(setup()));
        }
        let measure_budget = Duration::from_millis(100);
        let mut total = Duration::ZERO;
        let mut best = Duration::MAX;
        let mut iterations = 0u64;
        while total < measure_budget {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let elapsed = start.elapsed();
            total += elapsed;
            iterations += 1;
            best = best.min(elapsed);
        }
        self.measurement = Some(Measurement {
            iterations,
            total,
            best,
        });
    }
}

/// Identifies one parameterized benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendering just the parameter value, as criterion does.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// A `function/parameter` id.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function.into()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// The benchmark runner.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher { measurement: None };
    f(&mut bencher);
    match bencher.measurement {
        Some(m) => {
            let mean = m.total / m.iterations.max(1) as u32;
            println!(
                "{label:<45} mean {:>12} best {:>12} ({} iters)",
                format_duration(mean),
                format_duration(m.best),
                m.iterations
            );
        }
        None => println!("{label:<45} (no measurement: Bencher::iter never called)"),
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.3} us", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(name, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark of the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(&label, f);
        self
    }

    /// Runs one benchmark of the group with an explicit input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Expands to `fn main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("spin", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..100u64 {
                    acc = acc.wrapping_add(black_box(i));
                }
                acc
            })
        });
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.bench_function(BenchmarkId::from_parameter(8), |b| b.iter(|| black_box(8)));
        group.bench_with_input(BenchmarkId::from_parameter("x"), &3, |b, &v| {
            b.iter(|| black_box(v))
        });
        group.finish();
        assert_eq!(BenchmarkId::new("f", 4).id, "f/4");
    }
}
